"""Tests for the sharded parallel campaign engine, the shared corpus and the
wire-format serialization that carries state between executor processes."""

import pytest

from repro.core import (
    CampaignResult,
    CoveragePoint,
    DejaVuzzFuzzer,
    EngineConfiguration,
    FuzzerConfiguration,
    LeakageVerdict,
    ParallelCampaignEngine,
    SharedCorpus,
    SyncPolicy,
    run_parallel_campaign,
)
from repro.core.engine import (
    TRANSFER_SEED_ID_BASE,
    ShardTask,
    core_registry_lines,
    main as engine_main,
    resolve_core,
    run_shard_task,
)
from repro.core.phase1 import Phase1Result
from repro.core.report import BugReport
from repro.generation.seeds import EncodeStrategy, Seed
from repro.generation.window_types import TransientWindowType, group_of
from repro.uarch import small_boom_config, xiangshan_minimal_config

BOOM = small_boom_config()
XIANGSHAN = xiangshan_minimal_config()


def make_seed(seed_id=7, entropy=123, **kwargs):
    return Seed.fresh(
        seed_id=seed_id,
        entropy=entropy,
        window_type=TransientWindowType.LOAD_PAGE_FAULT,
        **kwargs,
    )


class TestWireFormats:
    def test_seed_roundtrip(self):
        seed = make_seed(
            encode_strategies=(EncodeStrategy.TLB_INDEX, EncodeStrategy.FPU_CONTENTION),
            mask_high_bits=True,
        )
        child = seed.mutated(seed_id=99, entropy=456)
        rebuilt = Seed.from_dict(child.to_dict())
        assert rebuilt == child
        # The per-seed rng stream depends on (entropy, seed_id): a faithful
        # round trip must reproduce it exactly.
        assert rebuilt.rng("phase1").randint(0, 10**6) == child.rng("phase1").randint(0, 10**6)

    def test_seed_from_dict_does_not_touch_the_id_counter(self):
        before = make_seed(seed_id=None).seed_id
        Seed.from_dict(make_seed(seed_id=1234).to_dict())
        after = make_seed(seed_id=None).seed_id
        assert after == before + 1

    def test_coverage_point_roundtrip(self):
        point = CoveragePoint(module="dcache", tainted_count=3)
        assert CoveragePoint.from_dict(point.to_dict()) == point

    def test_leakage_verdict_roundtrip(self):
        verdict = LeakageVerdict(
            is_leak=True,
            reason="live_taint",
            timing_difference=0,
            live_sinks={"dcache": 2},
            dead_sinks={"rob": 1},
            encoded_sinks={"dcache": 2, "rob": 1},
        )
        assert LeakageVerdict.from_dict(verdict.to_dict()) == verdict

    def test_bug_report_roundtrip(self):
        report = BugReport(
            iteration=4,
            seed_id=11,
            core="small-boom",
            window_type=TransientWindowType.BRANCH_MISPREDICTION,
            attack_type="spectre",
            window_category="mispred",
            timing_components=("dcache",),
            verdict=LeakageVerdict(is_leak=True, reason="timing", timing_difference=3),
            wall_clock_seconds=1.5,
            matched_known_bugs=("phantom-btb",),
        )
        assert BugReport.from_dict(report.to_dict()) == report

    def test_campaign_result_roundtrip(self):
        campaign = DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=3)).run_campaign(6)
        rebuilt = CampaignResult.from_dict(campaign.to_dict())
        assert rebuilt.coverage_history == campaign.coverage_history
        assert rebuilt.iterations_run == campaign.iterations_run
        assert rebuilt.reports == campaign.reports
        assert rebuilt.triggered_windows == campaign.triggered_windows
        assert rebuilt.summary()["unique_bugs"] == campaign.summary()["unique_bugs"]

    def test_phase1_result_roundtrip_keeps_statistics(self):
        original = Phase1Result(
            seed=make_seed(),
            spec=None,
            schedule=None,
            triggered=True,
            simulations_used=4,
            training_overhead=12,
            effective_training_overhead=3,
            training_required=True,
        )
        rebuilt = Phase1Result.from_dict(original.to_dict())
        assert rebuilt.seed == original.seed
        assert rebuilt.triggered
        assert rebuilt.simulations_used == 4
        assert rebuilt.training_overhead == 12
        assert rebuilt.effective_training_overhead == 3
        # window_type must survive the wire form even though spec does not.
        assert rebuilt.window_type == original.seed.window_type

    def test_statistics_only_phase1_result_rejected_by_phase2(self):
        from repro.core.phase2 import TransientExecutionExploration

        seed = make_seed()
        rebuilt = Phase1Result.from_dict(
            Phase1Result(
                seed=seed,
                spec=None,
                schedule=None,
                triggered=True,
                simulations_used=1,
            ).to_dict()
        )
        phase2 = TransientExecutionExploration(BOOM)
        with pytest.raises(ValueError, match="statistics-only"):
            phase2.complete_window(rebuilt, seed)


class TestSharedCorpus:
    def test_ranked_by_gain_with_deterministic_ties(self):
        corpus = SharedCorpus()
        corpus.add(make_seed(seed_id=1), gain=5, slice_index=0, epoch=0)
        corpus.add(make_seed(seed_id=2), gain=9, slice_index=1, epoch=0)
        corpus.add(make_seed(seed_id=3), gain=5, slice_index=0, epoch=0)
        best = corpus.best(3)
        assert [entry.seed.seed_id for entry in best] == [2, 1, 3]

    def test_higher_gain_updates_existing_entry(self):
        corpus = SharedCorpus()
        corpus.add(make_seed(seed_id=1), gain=2, slice_index=0, epoch=0)
        corpus.add(make_seed(seed_id=1), gain=8, slice_index=0, epoch=1)
        corpus.add(make_seed(seed_id=1), gain=4, slice_index=0, epoch=2)
        assert len(corpus) == 1
        assert corpus.best(1)[0].gain == 8

    def test_capacity_trim_keeps_top_gain(self):
        corpus = SharedCorpus(capacity=2)
        for seed_id, gain in ((1, 1), (2, 9), (3, 5)):
            corpus.add(make_seed(seed_id=seed_id), gain=gain, slice_index=0, epoch=0)
        assert len(corpus) == 2
        assert [entry.seed.seed_id for entry in corpus.best(2)] == [2, 3]

    def test_adding_a_low_gain_seed_to_a_full_corpus_does_not_crash(self):
        # Regression: the freshly-offered entry can be the one trimmed away;
        # add() must still return it instead of raising KeyError.
        corpus = SharedCorpus(capacity=2)
        corpus.add(make_seed(seed_id=1), gain=9, slice_index=0, epoch=0)
        corpus.add(make_seed(seed_id=2), gain=5, slice_index=0, epoch=0)
        evicted = corpus.add(make_seed(seed_id=3), gain=1, slice_index=1, epoch=0)
        assert evicted.seed.seed_id == 3
        assert len(corpus) == 2
        assert [entry.seed.seed_id for entry in corpus.best(2)] == [1, 2]

    def test_exclude_slice_skips_own_seeds(self):
        corpus = SharedCorpus()
        corpus.add(make_seed(seed_id=1), gain=9, slice_index=0, epoch=0)
        corpus.add(make_seed(seed_id=2), gain=1, slice_index=1, epoch=0)
        best = corpus.best(1, exclude_slice=0)
        assert best[0].seed.seed_id == 2

    def test_wire_roundtrip(self):
        corpus = SharedCorpus()
        corpus.add(make_seed(seed_id=1), gain=3, slice_index=0, epoch=1)
        rebuilt = SharedCorpus.from_dicts(corpus.to_dicts())
        assert rebuilt.best(1)[0].seed == corpus.best(1)[0].seed

    def test_wire_roundtrip_preserves_the_core_tag(self):
        corpus = SharedCorpus()
        corpus.add(make_seed(seed_id=1), gain=3, slice_index=0, epoch=1, core="small-boom")
        corpus.add(make_seed(seed_id=2), gain=5, slice_index=1, epoch=1, core="xiangshan-minimal")
        rebuilt = SharedCorpus.from_dicts(corpus.to_dicts())
        assert [entry.core for entry in rebuilt.best(2)] == [
            "xiangshan-minimal",
            "small-boom",
        ]
        assert rebuilt.cores() == ["small-boom", "xiangshan-minimal"]

    def test_core_tag_defaults_to_the_seed_realization(self):
        corpus = SharedCorpus()
        seed = Seed.from_dict({**make_seed(seed_id=4).to_dict(), "core": "small-boom"})
        entry = corpus.add(seed, gain=1, slice_index=0, epoch=0)
        assert entry.core == "small-boom"

    def test_best_filters_by_compatible_core(self):
        corpus = SharedCorpus()
        corpus.add(make_seed(seed_id=1), gain=9, slice_index=0, epoch=0, core="small-boom")
        corpus.add(make_seed(seed_id=2), gain=5, slice_index=1, epoch=0, core="xiangshan-minimal")
        corpus.add(make_seed(seed_id=3), gain=1, slice_index=2, epoch=0, core="")
        picked = corpus.best(3, core="xiangshan-minimal")
        # The foreign (boom) entry is filtered out; the untagged one ranks.
        assert [entry.seed.seed_id for entry in picked] == [2, 3]

    def test_eviction_drops_the_lowest_gain_first(self):
        corpus = SharedCorpus(capacity=3)
        for seed_id, gain in ((1, 4), (2, 8), (3, 6), (4, 7), (5, 5)):
            corpus.add(make_seed(seed_id=seed_id), gain=gain, slice_index=0, epoch=0)
        # Capacity 3: gains 4 then 5 were evicted, in that order.
        assert [entry.seed.seed_id for entry in corpus.best(3)] == [2, 4, 3]

    def test_eviction_ties_break_on_seed_id(self):
        corpus = SharedCorpus(capacity=2)
        for seed_id in (30, 10, 20):
            corpus.add(make_seed(seed_id=seed_id), gain=5, slice_index=0, epoch=0)
        # All gains equal: the lowest seed ids survive, insertion order moot.
        assert [entry.seed.seed_id for entry in corpus.best(2)] == [10, 20]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SharedCorpus(capacity=0)


class TestShardTask:
    def test_shard_task_is_a_pure_function_of_its_payload(self):
        task = ShardTask(
            slice_index=0,
            epoch=0,
            iterations=4,
            configuration=FuzzerConfiguration(core=BOOM, entropy=31, seed_id_base=10),
        )
        first = run_shard_task(task)
        second = run_shard_task(task)
        assert first["points"] == second["points"]
        assert first["result"]["coverage_history"] == second["result"]["coverage_history"]
        assert first["top_seeds"] == second["top_seeds"]

    def test_baseline_points_are_not_reported_back(self):
        baseline = [{"module": "dcache", "tainted_count": 1}]
        task = ShardTask(
            slice_index=0,
            epoch=0,
            iterations=3,
            configuration=FuzzerConfiguration(core=BOOM, entropy=31),
            baseline_points=baseline,
        )
        payload = run_shard_task(task)
        # Reported points are (final - baseline): the preloaded global point
        # must never be echoed back as a shard observation.
        assert {"module": "dcache", "tainted_count": 1} not in payload["points"]


class TestParallelCampaignEngine:
    def test_budget_split_is_exact(self):
        engine = ParallelCampaignEngine(
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=1),
                shards=3,
                iterations=17,
                sync_epochs=2,
            )
        )
        budgets = engine.epoch_budgets()
        assert sum(sum(epoch) for epoch in budgets) == 17
        # One budget entry per *logical slice* (default max(shards, 16)),
        # not per physical shard.
        slices = engine.configuration.slices
        assert slices == 16
        assert len(budgets) == 2 and all(len(epoch) == slices for epoch in budgets)

    def test_runs_full_budget_and_merges_supersets(self):
        result = run_parallel_campaign(
            BOOM, shards=2, iterations=12, sync_epochs=2, entropy=7, executor="inline"
        )
        assert result.campaign.iterations_run == 12
        assert len(result.coverage) > 0
        for slice_index, points in result.slice_points.items():
            assert points <= result.coverage.points, f"slice {slice_index} not a subset"
        # The merged curve is the engine's epoch-by-epoch history: monotone.
        history = result.campaign.coverage_history
        assert history == sorted(history)
        assert history[-1] == len(result.coverage)

    def test_deterministic_given_root_entropy(self):
        first = run_parallel_campaign(
            BOOM, shards=2, iterations=10, sync_epochs=2, entropy=5, executor="inline"
        )
        second = run_parallel_campaign(
            BOOM, shards=2, iterations=10, sync_epochs=2, entropy=5, executor="inline"
        )
        assert first.coverage.points == second.coverage.points
        assert first.campaign.coverage_history == second.campaign.coverage_history
        assert first.campaign.triggered_windows == second.campaign.triggered_windows
        assert [r.signature for r in first.campaign.reports] == [
            r.signature for r in second.campaign.reports
        ]

    def test_process_executor_matches_inline(self):
        inline = run_parallel_campaign(
            BOOM, shards=2, iterations=8, sync_epochs=2, entropy=9, executor="inline"
        )
        pooled = run_parallel_campaign(
            BOOM, shards=2, iterations=8, sync_epochs=2, entropy=9, executor="process"
        )
        assert pooled.coverage.points == inline.coverage.points
        assert pooled.campaign.coverage_history == inline.campaign.coverage_history

    def test_redistribution_reaches_lagging_shards(self):
        result = run_parallel_campaign(
            BOOM, shards=2, iterations=12, sync_epochs=3, entropy=7, executor="inline"
        )
        assert result.redistributed_seeds > 0

    def test_redistribution_assigns_distinct_seeds(self):
        from repro.core.engine import ParallelCampaignEngine as Engine

        engine = Engine(
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=1),
                shards=3,
                redistribute_top=2,
            )
        )
        engine.corpus.add(make_seed(seed_id=100), gain=9, slice_index=2, epoch=0)
        engine.corpus.add(make_seed(seed_id=200), gain=5, slice_index=2, epoch=0)
        from repro.core.engine import EngineResult
        from repro.core.coverage import TaintCoverageMatrix
        from repro.core.report import CampaignResult

        result = EngineResult(
            campaign=CampaignResult(fuzzer_name="dejavuzz", core=BOOM.name),
            core_coverage={BOOM.name: TaintCoverageMatrix()},
            shards=3,
            epochs=1,
        )
        assignments = engine._redistribute({0: 0, 1: 1, 2: 10}, result)
        # Shards 0 and 1 lag; they must receive two *different* donor seeds.
        assert assignments[0] is not None and assignments[1] is not None
        assert assignments[0]["seed_id"] != assignments[1]["seed_id"]
        assert result.redistributed_seeds == 2

        # A shard with no iterations left next epoch must not receive (and
        # silently drop) a donor seed; the redistribution slot moves to the
        # next-lagging shard instead (shard 2 donated both corpus seeds, so it
        # is excluded from receiving them back).
        result.redistributed_seeds = 0
        assignments = engine._redistribute(
            {0: 0, 1: 1, 2: 10}, result, next_budgets=[0, 1, 1]
        )
        assert assignments[0] is None
        assert assignments[1] is not None
        assert result.redistributed_seeds == 1

    def test_first_bug_iteration_is_rebased_across_epochs(self):
        result = run_parallel_campaign(
            BOOM, shards=2, iterations=16, sync_epochs=2, entropy=7, executor="inline"
        )
        if result.campaign.first_bug_iteration is not None:
            # Rebased to shard-cumulative iterations: can never exceed the
            # per-shard total budget.
            assert 0 <= result.campaign.first_bug_iteration < 16
            # Merged reports sit on the same rebased timeline, so the earliest
            # report agrees with the aggregate first-bug metric.
            assert result.campaign.reports
            assert (
                min(report.iteration for report in result.campaign.reports)
                == result.campaign.first_bug_iteration
            )

    def test_slice_seed_ids_never_collide(self):
        bases = {
            ParallelCampaignEngine.slice_seed_id_base(index, epoch)
            for index in range(8)
            for epoch in range(4)
        }
        assert len(bases) == 8 * 4

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), shards=0)
        with pytest.raises(ValueError):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), executor="threads")
        with pytest.raises(ValueError):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), iterations=0)
        with pytest.raises(ValueError):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), max_workers=0)
        with pytest.raises(ValueError, match="corpus_capacity"):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), corpus_capacity=0)
        with pytest.raises(ValueError, match="redistribute_top"):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), redistribute_top=-1)
        with pytest.raises(ValueError, match="report_top_seeds"):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), report_top_seeds=-1)
        with pytest.raises(ValueError, match="sync_epochs"):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), sync_epochs=0)
        with pytest.raises(ValueError, match="sync_epochs"):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), sync_epochs=-3)
        with pytest.raises(ValueError, match="async_concurrency"):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), async_concurrency=0)
        with pytest.raises(ValueError, match="step_latency"):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), step_latency=-0.1)
        with pytest.raises(ValueError, match="sync policy"):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), sync_policy="eager")
        # Slice-epoch seed-id bases must never reach the transfer namespace
        # (slice 99 epoch 0 would land exactly on TRANSFER_SEED_ID_BASE).
        with pytest.raises(ValueError, match="seed-id namespace"):
            EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), shards=100)
        EngineConfiguration(fuzzer=FuzzerConfiguration(core=BOOM), shards=98)

    def test_seed_id_namespace_boundaries(self):
        # Exactly-full epoch namespace: 100 epochs fill one slice's stride
        # to the brim (100 * EPOCH_ID_STRIDE == SLICE_ID_STRIDE) and pass...
        EngineConfiguration(
            fuzzer=FuzzerConfiguration(core=BOOM),
            shards=2, iterations=101, sync_epochs=100,
        )
        # ...while one more epoch spills into the next slice's stride.
        with pytest.raises(ValueError, match="slice's seed-id stride"):
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM),
                shards=2, iterations=102, sync_epochs=101,
            )
        # Exactly-full slice namespace: the highest slice-epoch base plus one
        # stride lands exactly on TRANSFER_SEED_ID_BASE and passes...
        EngineConfiguration(
            fuzzer=FuzzerConfiguration(core=BOOM),
            shards=2, slices=99, iterations=101, sync_epochs=100,
        )
        # ...while one more slice crosses into the transfer namespace.
        with pytest.raises(ValueError, match="seed-id namespace"):
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM),
                shards=2, slices=100, iterations=2, sync_epochs=1,
            )
        with pytest.raises(ValueError, match="slices must be positive"):
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM), shards=2, slices=0
            )

    def test_rejects_bad_core_assignments(self):
        fuzzer = FuzzerConfiguration(core=BOOM)
        with pytest.raises(ValueError, match="than slices"):
            EngineConfiguration(
                fuzzer=fuzzer, shards=2, slices=2,
                cores=["boom", "xiangshan", "boom-large"],
            )
        with pytest.raises(ValueError, match="at least one core"):
            EngineConfiguration(fuzzer=fuzzer, shards=1, cores=[])
        with pytest.raises(ValueError, match="unknown core"):
            EngineConfiguration(fuzzer=fuzzer, shards=1, cores=["rocket"])
        with pytest.raises(ValueError, match="cannot interpret"):
            EngineConfiguration(fuzzer=fuzzer, shards=1, cores=[42])

    def test_core_assignments_accept_names_configs_and_fuzzers(self):
        fuzzer = FuzzerConfiguration(core=BOOM, entropy=3)
        configuration = EngineConfiguration(
            fuzzer=fuzzer,
            shards=3,
            cores=["xiangshan", XIANGSHAN, FuzzerConfiguration(core=BOOM, entropy=99)],
        )
        prototypes = configuration.slice_fuzzers()
        # One prototype per logical slice, the cores rotation applied
        # round-robin: slice s runs cores[s % len(cores)].
        assert len(prototypes) == configuration.slices
        assert [prototype.core.name for prototype in prototypes[:3]] == [
            "xiangshan-minimal",
            "xiangshan-minimal",
            "small-boom",
        ]
        assert prototypes[3].core.name == prototypes[0].core.name
        # Name/config entries inherit the prototype's knobs; a full
        # FuzzerConfiguration is taken as-is.
        assert prototypes[0].entropy == 3
        assert prototypes[2].entropy == 99


class TestHeterogeneousEngine:
    def run_mixed(self, entropy=11, iterations=16, epochs=2):
        return run_parallel_campaign(
            cores=["boom", "xiangshan"],
            shards=2,
            iterations=iterations,
            sync_epochs=epochs,
            entropy=entropy,
            executor="inline",
        )

    def test_coverage_is_merged_strictly_per_core(self):
        result = self.run_mixed()
        assert set(result.core_coverage) == {"small-boom", "xiangshan-minimal"}
        for slice_index, points in result.slice_points.items():
            core_name = result.slice_cores[slice_index]
            assert points <= result.core_coverage[core_name].points
        # Each matrix holds exactly its own shards' points: nothing leaked
        # across the core boundary during the merge.
        for core_name, matrix in result.core_coverage.items():
            own = set()
            for index, name in result.slice_cores.items():
                if name == core_name:
                    own |= result.slice_points[index]
            assert matrix.points == own

    def test_single_coverage_property_is_refused_for_mixed_campaigns(self):
        result = self.run_mixed()
        with pytest.raises(ValueError, match="per core"):
            result.coverage
        homogeneous = run_parallel_campaign(
            BOOM, shards=2, iterations=6, sync_epochs=1, entropy=1, executor="inline"
        )
        assert homogeneous.coverage is homogeneous.core_coverage[BOOM.name]

    def test_mixed_campaign_is_reproducible_from_root_entropy(self):
        first = self.run_mixed(entropy=2025, iterations=24, epochs=3)
        second = self.run_mixed(entropy=2025, iterations=24, epochs=3)
        assert first.campaign.to_dict(include_timing=False) == second.campaign.to_dict(
            include_timing=False
        )
        assert first.transfers == second.transfers
        for core_name in first.core_coverage:
            assert (
                first.core_coverage[core_name].points
                == second.core_coverage[core_name].points
            )

    def test_transfers_re_realize_for_the_target_core(self):
        result = self.run_mixed(entropy=2025, iterations=24, epochs=3)
        assert result.transferred_seeds > 0
        for row in result.transfers:
            assert row["donor_core"] != row["target_core"]
            assert row["transferred_seed_id"] >= TRANSFER_SEED_ID_BASE
            # Every transfer ran in a later epoch, so its outcome is known.
            assert row["new_global_points"] is not None

    def test_aggregate_report_carries_the_per_core_breakdown(self):
        result = self.run_mixed()
        breakdown = result.campaign.core_breakdown
        assert set(breakdown) == {"small-boom", "xiangshan-minimal"}
        assert (
            sum(entry["iterations"] for entry in breakdown.values())
            == result.campaign.iterations_run
        )
        summary = result.summary()
        assert set(summary["per_core_coverage"]) == set(result.core_coverage)
        assert summary["coverage"] == result.total_coverage()

    def test_fuzzer_rejects_a_foreign_core_seed(self):
        fuzzer = DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=1))
        foreign = Seed.from_dict(
            {**make_seed(seed_id=5).to_dict(), "core": "xiangshan-minimal"}
        )
        with pytest.raises(ValueError, match="transfer"):
            fuzzer.run_campaign(2, initial_seed=foreign)
        # The transferred realization of the same seed is accepted.
        moved = foreign.transfer("small-boom", seed_id=6)
        assert group_of(moved.window_type) == group_of(foreign.window_type)
        fuzzer.run_campaign(2, initial_seed=moved)


class TestEngineCli:
    def test_list_cores_exits_cleanly(self, capsys):
        assert engine_main(["--list-cores"]) == 0
        output = capsys.readouterr().out
        assert "boom" in output and "xiangshan" in output

    def test_core_registry_lists_each_core_once_with_aliases(self):
        lines = core_registry_lines()
        assert len(lines) == 3
        boom_line = next(line for line in lines if line.startswith("boom "))
        assert "small-boom" in boom_line  # alias folded into the canonical row
        large_line = next(line for line in lines if line.startswith("boom-large"))
        assert "large-boom" in large_line

    def test_three_core_registry_drives_a_heterogeneous_campaign(self):
        result = run_parallel_campaign(
            cores=["boom", "boom-large", "xiangshan"],
            shards=3,
            iterations=6,
            sync_epochs=1,
            executor="inline",
            entropy=5,
        )
        assert set(result.core_coverage) == {
            "small-boom",
            "large-boom",
            "xiangshan-minimal",
        }
        assert result.campaign.iterations_run == 6

    def test_resolve_core_accepts_aliases(self):
        assert resolve_core("boom").name == resolve_core("small-boom").name
        assert resolve_core("xiangshan").name == resolve_core("xiangshan-minimal").name
        with pytest.raises(ValueError, match="unknown core"):
            resolve_core("rocket")

    def test_cores_flag_drives_a_heterogeneous_campaign(self, capsys):
        code = engine_main(
            ["--cores", "boom,xiangshan", "--iterations", "8", "--epochs", "1", "--inline"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "small-boom+xiangshan-minimal" in output
        assert "per_core_coverage" in output

    def test_bad_cores_flag_is_reported(self, capsys):
        assert engine_main(["--cores", "rocket", "--inline"]) == 2
        assert "unknown core" in capsys.readouterr().out


class TestSeedIdReproducibility:
    def test_identical_campaigns_allocate_identical_seed_ids(self):
        def run_once():
            fuzzer = DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=21))
            fuzzer.run_campaign(5)
            return [seed.seed_id for seed, _ in fuzzer.top_seeds(10)]

        first = run_once()
        # Churn the module-global counter between the two campaigns: library
        # code paths must not depend on it.
        for _ in range(7):
            Seed.fresh(entropy=1, window_type=TransientWindowType.LOAD_MISALIGN)
        second = run_once()
        assert first == second


class TestSyncPolicy:
    def cfg(self, **overrides):
        defaults = dict(
            fuzzer=FuzzerConfiguration(core=BOOM, entropy=5),
            shards=2,
            iterations=12,
            executor="inline",
        )
        defaults.update(overrides)
        return EngineConfiguration(**defaults)

    def test_policy_shorthand_and_validation(self):
        configuration = self.cfg(sync_policy="stall")
        assert isinstance(configuration.sync_policy, SyncPolicy)
        assert configuration.sync_policy.kind == "stall"
        with pytest.raises(ValueError, match="epoch_iterations"):
            SyncPolicy(kind="stall", epoch_iterations=-1)
        with pytest.raises(ValueError, match="stall_gain"):
            SyncPolicy(kind="stall", stall_gain=-1)

    def test_stall_rounds_cover_the_exact_budget(self):
        configuration = self.cfg(
            sync_policy=SyncPolicy(kind="stall", epoch_iterations=5)
        )
        assert configuration.round_iterations() == [5, 5, 2]
        assert configuration.planned_epochs() == 3
        result = ParallelCampaignEngine(configuration).run()
        assert result.campaign.iterations_run == 12
        assert result.epochs == 3
        assert result.complete

    def test_stall_policy_is_deterministic(self):
        def run_once():
            return ParallelCampaignEngine(
                self.cfg(sync_policy=SyncPolicy(kind="stall", epoch_iterations=4))
            ).run()

        first, second = run_once(), run_once()
        assert first.campaign.to_dict(include_timing=False) == second.campaign.to_dict(
            include_timing=False
        )
        assert first.redistributed_seeds == second.redistributed_seeds

    def test_stall_redistributes_only_on_flatline(self):
        engine = ParallelCampaignEngine(
            self.cfg(sync_policy=SyncPolicy(kind="stall", epoch_iterations=4, stall_gain=1))
        )
        # A productive round (above the stall threshold) keeps shards on
        # their own trajectory; a flatlined round triggers the corpus sync.
        assert not engine._should_redistribute({0: 3, 1: 2})
        assert engine._should_redistribute({0: 1, 1: 0})
        assert engine._should_redistribute({0: 0, 1: 0})

    def test_fixed_policy_always_redistributes(self):
        engine = ParallelCampaignEngine(self.cfg())
        assert engine._should_redistribute({0: 100, 1: 100})

    def test_window_rounds_validation(self):
        with pytest.raises(ValueError, match="window_rounds"):
            SyncPolicy(kind="stall", window_rounds=0)
        with pytest.raises(ValueError, match="window_rounds"):
            SyncPolicy(kind="stall", window_rounds=-2)

    def test_windowed_stall_estimate_averages_recent_rounds(self):
        engine = ParallelCampaignEngine(
            self.cfg(
                sync_policy=SyncPolicy(
                    kind="stall", epoch_iterations=4, stall_gain=1, window_rounds=2
                )
            )
        )
        scheduler = engine.scheduler
        # One productive prior round on record: its gain is averaged with the
        # current one, so a single flat round no longer triggers...
        scheduler._round_gains = [5]
        assert not engine._should_redistribute({0: 0, 1: 0})  # mean (5+0)/2 > 1
        # ...but two consecutive flat rounds do.
        scheduler._round_gains = [5, 1]
        assert engine._should_redistribute({0: 1, 1: 0})  # mean (1+1)/2 <= 1

    def test_window_rounds_default_is_the_single_round_threshold(self):
        # K=1 must reproduce the legacy behaviour exactly, history or not.
        engine = ParallelCampaignEngine(
            self.cfg(sync_policy=SyncPolicy(kind="stall", epoch_iterations=4, stall_gain=1))
        )
        engine.scheduler._round_gains = [50, 40, 30]
        assert engine._should_redistribute({0: 1, 1: 0})
        assert not engine._should_redistribute({0: 3, 1: 2})

    def test_windowed_stall_campaign_is_deterministic_and_checkpointable(self, tmp_path):
        def cfg(checkpoint=None):
            return self.cfg(
                iterations=16,
                sync_policy=SyncPolicy(
                    kind="stall", epoch_iterations=4, stall_gain=2, window_rounds=2
                ),
                checkpoint_path=checkpoint,
            )

        uninterrupted = ParallelCampaignEngine(cfg()).run()
        checkpoint = str(tmp_path / "windowed.json")
        ParallelCampaignEngine(cfg(checkpoint)).run(max_epochs=2)
        # The gain history feeds the windowed estimate, so it must survive
        # the checkpoint round trip for the resumed run to stay identical.
        resumed = ParallelCampaignEngine.resume_from(checkpoint, cfg(checkpoint)).run()
        assert resumed.campaign.to_dict(
            include_timing=False
        ) == uninterrupted.campaign.to_dict(include_timing=False)
        assert resumed.redistributed_seeds == uninterrupted.redistributed_seeds

    def test_planned_epochs_guard_the_seed_id_namespace(self):
        with pytest.raises(ValueError, match="seed-id"):
            self.cfg(
                iterations=10_000,
                sync_policy=SyncPolicy(kind="stall", epoch_iterations=1),
            )


class TestCheckpointResume:
    def cfg(self, tmp_path=None, cores=None, entropy=7, **overrides):
        defaults = dict(
            fuzzer=FuzzerConfiguration(core=BOOM, entropy=entropy),
            shards=2,
            iterations=12,
            sync_epochs=3,
            executor="inline",
            cores=cores,
        )
        if tmp_path is not None:
            defaults["checkpoint_path"] = str(tmp_path / "checkpoint.json")
        defaults.update(overrides)
        return EngineConfiguration(**defaults)

    def assert_resumed_matches_uninterrupted(self, tmp_path, cores=None, entropy=7):
        uninterrupted = ParallelCampaignEngine(
            self.cfg(cores=cores, entropy=entropy)
        ).run()
        halted_engine = ParallelCampaignEngine(
            self.cfg(tmp_path, cores=cores, entropy=entropy)
        )
        partial = halted_engine.run(max_epochs=1)
        assert not partial.complete
        resumed = ParallelCampaignEngine.resume_from(
            str(tmp_path / "checkpoint.json"),
            self.cfg(tmp_path, cores=cores, entropy=entropy),
        ).run()
        assert resumed.complete
        assert resumed.campaign.to_dict(
            include_timing=False
        ) == uninterrupted.campaign.to_dict(include_timing=False)
        for core_name, matrix in uninterrupted.core_coverage.items():
            assert resumed.core_coverage[core_name].points == matrix.points
            assert resumed.core_coverage[core_name].history == matrix.history
        assert resumed.transfers == uninterrupted.transfers
        assert resumed.redistributed_seeds == uninterrupted.redistributed_seeds
        assert resumed.slice_points == uninterrupted.slice_points
        return resumed

    def test_homogeneous_round_trip_is_byte_identical(self, tmp_path):
        self.assert_resumed_matches_uninterrupted(tmp_path)

    def test_heterogeneous_round_trip_is_byte_identical(self, tmp_path):
        resumed = self.assert_resumed_matches_uninterrupted(
            tmp_path, cores=["boom", "xiangshan"], entropy=11
        )
        assert set(resumed.core_coverage) == {"small-boom", "xiangshan-minimal"}

    def test_resume_on_a_different_backend_is_identical(self, tmp_path):
        uninterrupted = ParallelCampaignEngine(self.cfg()).run()
        ParallelCampaignEngine(self.cfg(tmp_path)).run(max_epochs=1)
        resumed = ParallelCampaignEngine.resume_from(
            str(tmp_path / "checkpoint.json"),
            self.cfg(tmp_path, executor="async", async_concurrency=2),
        ).run()
        assert resumed.campaign.to_dict(
            include_timing=False
        ) == uninterrupted.campaign.to_dict(include_timing=False)

    def test_checkpoint_rejects_a_different_campaign(self, tmp_path):
        ParallelCampaignEngine(self.cfg(tmp_path)).run(max_epochs=1)
        with pytest.raises(ValueError, match="entropy"):
            ParallelCampaignEngine.resume_from(
                str(tmp_path / "checkpoint.json"), self.cfg(tmp_path, entropy=8)
            )
        with pytest.raises(ValueError, match="iterations"):
            ParallelCampaignEngine.resume_from(
                str(tmp_path / "checkpoint.json"),
                self.cfg(tmp_path, iterations=24),
            )

    def test_resume_rejects_a_changed_sync_policy_with_a_clear_message(self, tmp_path):
        # Regression: resuming with a different sync policy would silently
        # alter the redistribution cadence of the remaining epochs, so the
        # rejection must say exactly that — not just list differing fields.
        ParallelCampaignEngine(self.cfg(tmp_path)).run(max_epochs=1)
        path = str(tmp_path / "checkpoint.json")
        with pytest.raises(ValueError, match="redistribution cadence"):
            ParallelCampaignEngine.resume_from(
                path,
                self.cfg(
                    tmp_path,
                    sync_policy=SyncPolicy(kind="stall", epoch_iterations=4),
                ),
            )
        # A changed knob *within* the same policy kind is just as cadence-
        # altering and gets the same treatment.
        ParallelCampaignEngine(
            self.cfg(
                tmp_path, sync_policy=SyncPolicy(kind="stall", epoch_iterations=4)
            )
        ).run(max_epochs=1)
        with pytest.raises(ValueError, match="redistribution cadence"):
            ParallelCampaignEngine.resume_from(
                path,
                self.cfg(
                    tmp_path,
                    sync_policy=SyncPolicy(
                        kind="stall", epoch_iterations=4, window_rounds=3
                    ),
                ),
            )

    def test_format1_fixture_fails_with_a_clear_message(self):
        # Committed fixture written by the format-1 (shard-keyed) engine: it
        # must be rejected with an actionable format error, not a KeyError
        # from deep inside restore().
        import json
        import os

        fixture = os.path.join(
            os.path.dirname(__file__), "data", "checkpoint_format1.json"
        )
        payload = json.loads(open(fixture, encoding="utf-8").read())
        assert payload["format"] == 1
        assert "shards" in payload["fingerprint"]  # genuinely shard-keyed
        with pytest.raises(
            ValueError,
            match=r"checkpoint format 1, expected 2.*re-run.*or migrate",
        ):
            ParallelCampaignEngine.resume_from(fixture, self.cfg())

    def test_fingerprint_pins_slices_not_shards(self, tmp_path):
        ParallelCampaignEngine(self.cfg(tmp_path)).run(max_epochs=1)
        import json

        payload = json.loads((tmp_path / "checkpoint.json").read_text())
        assert payload["fingerprint"]["slices"] == 16
        assert "shards" not in payload["fingerprint"]

    def test_checkpoint_rejects_an_unknown_format(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError, match="checkpoint format"):
            ParallelCampaignEngine.resume_from(str(path), self.cfg())

    def test_checkpoint_state_requires_a_started_run(self):
        engine = ParallelCampaignEngine(self.cfg())
        with pytest.raises(ValueError, match="run\\(\\) has not started"):
            engine.checkpoint_state()

    def test_checkpoint_file_is_json_and_atomic(self, tmp_path):
        import json

        engine = ParallelCampaignEngine(self.cfg(tmp_path))
        engine.run(max_epochs=1)
        path = tmp_path / "checkpoint.json"
        payload = json.loads(path.read_text())
        assert payload["format"] == 2
        assert payload["next_epoch"] == 1
        assert not (tmp_path / "checkpoint.json.tmp").exists()


class TestTransferAwareRedistribution:
    def test_untriggered_group_donor_is_preferred(self):
        from repro.core.engine import EngineResult
        from repro.core.coverage import TaintCoverageMatrix

        engine = ParallelCampaignEngine(
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=1),
                shards=2,
                redistribute_top=1,
            )
        )
        # Donor 100 has more gain but its window group is already triggered
        # on the receiving core; donor 200's group is still untriggered.
        high_gain = Seed.fresh(
            seed_id=100, entropy=1, window_type=TransientWindowType.LOAD_PAGE_FAULT
        )
        fresh_group = Seed.fresh(
            seed_id=200, entropy=2, window_type=TransientWindowType.BRANCH_MISPREDICTION
        )
        engine.corpus.add(high_gain, gain=9, slice_index=1, epoch=0)
        engine.corpus.add(fresh_group, gain=5, slice_index=1, epoch=0)
        engine._core_triggered = {BOOM.name: {group_of(high_gain.window_type)}}
        result = EngineResult(
            campaign=CampaignResult(fuzzer_name="dejavuzz", core=BOOM.name),
            core_coverage={BOOM.name: TaintCoverageMatrix()},
            shards=2,
            epochs=1,
        )
        assignments = engine._redistribute({0: 0, 1: 10}, result)
        assert assignments[0]["seed_id"] == 200

    def test_gain_order_decides_within_a_tier(self):
        from repro.core.engine import EngineResult
        from repro.core.coverage import TaintCoverageMatrix

        engine = ParallelCampaignEngine(
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=1),
                shards=2,
                redistribute_top=1,
            )
        )
        # No group triggered yet: both donors sit in the same (untriggered)
        # tier, so plain gain order decides.
        engine.corpus.add(
            Seed.fresh(seed_id=100, entropy=1, window_type=TransientWindowType.LOAD_PAGE_FAULT),
            gain=9, slice_index=1, epoch=0,
        )
        engine.corpus.add(
            Seed.fresh(seed_id=200, entropy=2, window_type=TransientWindowType.BRANCH_MISPREDICTION),
            gain=5, slice_index=1, epoch=0,
        )
        result = EngineResult(
            campaign=CampaignResult(fuzzer_name="dejavuzz", core=BOOM.name),
            core_coverage={BOOM.name: TaintCoverageMatrix()},
            shards=2,
            epochs=1,
        )
        assignments = engine._redistribute({0: 0, 1: 10}, result)
        assert assignments[0]["seed_id"] == 100


class TestFeedbackKnobPlumbing:
    def test_low_gain_limit_reaches_phase2(self):
        configuration = FuzzerConfiguration(core=BOOM, entropy=1, low_gain_limit=7)
        fuzzer = DejaVuzzFuzzer(configuration)
        assert fuzzer.phase2.low_gain_limit == 7

    def test_low_gain_limit_changes_campaign_behaviour(self):
        # limit=0 discards a seed on the first below-average attempt; a large
        # limit keeps re-rolling the same window.  The two policies must not
        # explore identically.
        impatient = DejaVuzzFuzzer(
            FuzzerConfiguration(core=BOOM, entropy=13, low_gain_limit=0)
        ).run_campaign(12)
        patient = DejaVuzzFuzzer(
            FuzzerConfiguration(core=BOOM, entropy=13, low_gain_limit=50)
        ).run_campaign(12)
        assert (
            impatient.coverage_history != patient.coverage_history
            or impatient.triggered_windows != patient.triggered_windows
        )

    def test_mutator_pick_strategies_is_public(self):
        fuzzer = DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=1))
        strategies = fuzzer.mutator.pick_strategies()
        assert strategies and all(isinstance(s, EncodeStrategy) for s in strategies)

    def test_seed_id_base_namespaces_campaigns(self):
        shard0 = DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=2, seed_id_base=0))
        shard1 = DejaVuzzFuzzer(
            FuzzerConfiguration(core=BOOM, entropy=2, seed_id_base=1_000_000)
        )
        shard0.run_campaign(4)
        shard1.run_campaign(4)
        ids0 = {seed.seed_id for seed, _ in shard0.top_seeds(10)}
        ids1 = {seed.seed_id for seed, _ in shard1.top_seeds(10)}
        assert ids0 and ids1
        assert not ids0 & ids1


class TestElasticResume:
    """A checkpoint written at N physical shards resumes at any other shard
    count byte-identically: every deterministic derivation (entropy streams,
    seed-id bases, core assignment, corpus attribution) is keyed by logical
    slice, and the fingerprint pins ``slices``, never ``shards``."""

    def cfg(self, shards, tmp_path=None, cores=None, executor="inline",
            **overrides):
        defaults = dict(
            fuzzer=FuzzerConfiguration(core=BOOM, entropy=13),
            shards=shards,
            iterations=24,
            sync_epochs=3,
            executor=executor,
            cores=cores,
        )
        if tmp_path is not None:
            defaults["checkpoint_path"] = str(tmp_path / "checkpoint.json")
        defaults.update(overrides)
        return EngineConfiguration(**defaults)

    def checkpoint_then_resume(self, tmp_path, resume_shards, cores=None,
                               executor="inline", resume_executor=None,
                               **overrides):
        uninterrupted = ParallelCampaignEngine(
            self.cfg(4, cores=cores, executor=executor, **overrides)
        ).run()
        partial = ParallelCampaignEngine(
            self.cfg(4, tmp_path, cores=cores, executor=executor, **overrides)
        ).run(max_epochs=1)
        assert not partial.complete
        resumed = ParallelCampaignEngine.resume_from(
            str(tmp_path / "checkpoint.json"),
            self.cfg(
                resume_shards, tmp_path, cores=cores,
                executor=resume_executor or executor, **overrides,
            ),
        ).run()
        assert resumed.complete
        assert resumed.shards == resume_shards
        assert resumed.slices == uninterrupted.slices
        assert resumed.campaign.to_dict(
            include_timing=False
        ) == uninterrupted.campaign.to_dict(include_timing=False)
        assert resumed.slice_points == uninterrupted.slice_points
        assert resumed.slice_cores == uninterrupted.slice_cores
        assert resumed.transfers == uninterrupted.transfers
        return resumed

    @pytest.mark.parametrize("resume_shards", [8, 2, 1])
    def test_inline_resume_at_other_shard_counts(self, tmp_path, resume_shards):
        self.checkpoint_then_resume(tmp_path, resume_shards)

    def test_process_pool_resume_at_double_the_shards(self, tmp_path):
        self.checkpoint_then_resume(tmp_path, 8, executor="process")

    def test_async_resume_at_half_the_shards(self, tmp_path):
        self.checkpoint_then_resume(
            tmp_path, 2, executor="async", async_concurrency=2
        )

    def test_resume_crosses_executors_and_shard_counts_at_once(self, tmp_path):
        # The checkpoint pins neither the executor nor the shard count:
        # checkpoint under the inline executor at 4 shards, resume on the
        # process pool at 8.
        self.checkpoint_then_resume(
            tmp_path, 8, executor="inline", resume_executor="process"
        )

    def test_heterogeneous_cores_survive_resharding(self, tmp_path):
        cores = ["boom", "xiangshan", "boom-large"]
        for resume_shards in (8, 2):
            resumed = self.checkpoint_then_resume(
                tmp_path / f"at{resume_shards}", resume_shards, cores=cores
            )
            # Slice->core binding is round-robin over the cores rotation and
            # must not move when the physical shard count changes.
            assert [resumed.slice_cores[index] for index in range(3)] == [
                "small-boom", "xiangshan-minimal", "large-boom",
            ]
            assert set(resumed.core_coverage) == {
                "small-boom", "xiangshan-minimal", "large-boom",
            }

    def test_explicit_slices_knob_is_honoured_across_resume(self, tmp_path):
        uninterrupted = ParallelCampaignEngine(
            self.cfg(4, slices=6)
        ).run()
        assert uninterrupted.slices == 6
        ParallelCampaignEngine(self.cfg(4, tmp_path, slices=6)).run(max_epochs=1)
        resumed = ParallelCampaignEngine.resume_from(
            str(tmp_path / "checkpoint.json"), self.cfg(2, tmp_path, slices=6)
        ).run()
        assert resumed.slices == 6
        assert resumed.campaign.to_dict(
            include_timing=False
        ) == uninterrupted.campaign.to_dict(include_timing=False)

    def test_resume_with_a_different_slice_count_is_rejected(self, tmp_path):
        ParallelCampaignEngine(self.cfg(4, tmp_path)).run(max_epochs=1)
        with pytest.raises(ValueError, match="slices"):
            ParallelCampaignEngine.resume_from(
                str(tmp_path / "checkpoint.json"), self.cfg(4, tmp_path, slices=8)
            )
