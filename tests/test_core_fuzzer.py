"""Tests for the fuzzing manager, its ablation variants and the SpecDoctor baseline."""

import pytest

from repro.baselines import SPECDOCTOR_SUPPORTED_WINDOWS, SpecDoctorConfiguration, SpecDoctorFuzzer
from repro.core import DejaVuzzFuzzer, FuzzerConfiguration
from repro.generation import TrainingMode, TransientWindowType
from repro.uarch import TaintTrackingMode, small_boom_config, xiangshan_minimal_config

BOOM = small_boom_config()


class TestDejaVuzzFuzzer:
    def test_campaign_runs_and_reports(self):
        configuration = FuzzerConfiguration(core=BOOM, entropy=11)
        campaign = DejaVuzzFuzzer(configuration).run_campaign(iterations=20)
        assert campaign.iterations_run == 20
        assert len(campaign.coverage_history) == 20
        assert campaign.coverage_history == sorted(campaign.coverage_history)  # monotone
        assert campaign.final_coverage() > 0
        assert campaign.triggered_windows  # at least one window type triggered
        summary = campaign.summary()
        assert summary["fuzzer"] == "dejavuzz"
        assert summary["core"] == BOOM.name

    def test_campaign_finds_leakages(self):
        configuration = FuzzerConfiguration(core=BOOM, entropy=11)
        campaign = DejaVuzzFuzzer(configuration).run_campaign(iterations=25)
        assert campaign.reports, "expected at least one reported leakage in 25 iterations"
        assert campaign.first_bug_iteration is not None
        assert campaign.table5_rows()

    def test_deterministic_given_entropy(self):
        # Back-to-back campaigns in the same process: seed ids are allocated
        # from a campaign-local counter (not module-global state), so the
        # second run replays the first exactly — histories, reports and the
        # seeds themselves.
        first_fuzzer = DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=4))
        second_fuzzer = DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=4))
        first = first_fuzzer.run_campaign(8)
        second = second_fuzzer.run_campaign(8)
        assert first.coverage_history == second.coverage_history
        assert first.triggered_windows == second.triggered_windows
        assert [report.seed_id for report in first.reports] == [
            report.seed_id for report in second.reports
        ]
        assert first_fuzzer.top_seeds(5) == second_fuzzer.top_seeds(5)

    def test_variant_names(self):
        assert FuzzerConfiguration(core=BOOM).variant_name() == "dejavuzz"
        assert (
            FuzzerConfiguration(core=BOOM, training_mode=TrainingMode.RANDOM).variant_name()
            == "dejavuzz*"
        )
        assert (
            FuzzerConfiguration(core=BOOM, coverage_feedback=False).variant_name() == "dejavuzz-"
        )

    def test_dejavuzz_star_uses_random_training(self):
        configuration = FuzzerConfiguration(
            core=BOOM, entropy=5, training_mode=TrainingMode.RANDOM
        )
        campaign = DejaVuzzFuzzer(configuration).run_campaign(iterations=10)
        assert campaign.fuzzer_name == "dejavuzz*"
        # Random training keeps whole random packets, so the effective overhead
        # of triggered misprediction windows is much larger than derived training.
        for group, samples in campaign.effective_training_overhead.items():
            if group in ("Branch Misprediction", "Indirect Jump Misprediction",
                         "Return Address Misprediction") and samples:
                assert max(samples) > 10

    def test_dejavuzz_minus_still_measures_coverage(self):
        configuration = FuzzerConfiguration(core=BOOM, entropy=6, coverage_feedback=False)
        campaign = DejaVuzzFuzzer(configuration).run_campaign(iterations=10)
        assert campaign.fuzzer_name == "dejavuzz-"
        assert campaign.final_coverage() >= 0

    def test_progress_callback_invoked(self):
        calls = []
        DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=2)).run_campaign(
            iterations=3, progress_callback=lambda i, result: calls.append(i)
        )
        assert calls == [0, 1, 2]


class TestSpecDoctorBaseline:
    def test_supported_window_types_only(self):
        fuzzer = SpecDoctorFuzzer(SpecDoctorConfiguration(core=BOOM, entropy=1))
        with pytest.raises(ValueError):
            fuzzer.generate_stimulus(TransientWindowType.RETURN_MISPREDICTION)
        stimulus = fuzzer.generate_stimulus(TransientWindowType.LOAD_PAGE_FAULT)
        assert stimulus.window_type in SPECDOCTOR_SUPPORTED_WINDOWS

    def test_linear_stimulus_is_single_packet(self):
        fuzzer = SpecDoctorFuzzer(SpecDoctorConfiguration(core=BOOM, entropy=1))
        stimulus = fuzzer.generate_stimulus(TransientWindowType.BRANCH_MISPREDICTION)
        assert len(stimulus.schedule.packets) == 1
        assert stimulus.training_instructions >= 100

    def test_campaign_triggers_windows_and_candidates(self):
        fuzzer = SpecDoctorFuzzer(SpecDoctorConfiguration(core=BOOM, entropy=5))
        campaign = fuzzer.run_campaign(iterations=8)
        assert campaign.fuzzer_name == "specdoctor"
        assert campaign.triggered_windows
        # Only the four supported groups can ever appear.
        supported_groups = {
            "Load/Store Page Fault",
            "Memory Disambiguation",
            "Branch Misprediction",
            "Indirect Jump Misprediction",
        }
        assert set(campaign.triggered_windows) <= supported_groups
        # The unreduced random prefix is counted as training overhead.
        for samples in campaign.training_overhead.values():
            assert min(samples) >= 100

    def test_specdoctor_coverage_grows_slower_than_dejavuzz(self):
        iterations = 12
        dejavuzz = DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=7)).run_campaign(iterations)
        specdoctor = SpecDoctorFuzzer(SpecDoctorConfiguration(core=BOOM, entropy=7)).run_campaign(
            iterations
        )
        assert dejavuzz.final_coverage() >= specdoctor.final_coverage()


class TestCrossCoreCampaigns:
    def test_xiangshan_campaign_matches_its_bugs(self):
        configuration = FuzzerConfiguration(core=xiangshan_minimal_config(), entropy=11)
        campaign = DejaVuzzFuzzer(configuration).run_campaign(iterations=20)
        matched = set(campaign.matched_known_bugs())
        for identifier in matched:
            assert identifier in {"meltdown-sampling", "spectre-refetch", "spectre-reload"}

    def test_none_taint_mode_reports_nothing_via_taint(self):
        configuration = FuzzerConfiguration(
            core=BOOM, entropy=11, taint_mode=TaintTrackingMode.NONE
        )
        campaign = DejaVuzzFuzzer(configuration).run_campaign(iterations=6)
        # Without IFT there is no coverage signal.
        assert campaign.final_coverage() == 0
