"""Integration tests for the three DejaVuzz phases."""

import pytest

from repro.core.coverage import TaintCoverageMatrix
from repro.core.phase1 import TransientWindowTriggering
from repro.core.phase2 import TransientExecutionExploration
from repro.core.phase3 import TransientLeakageAnalysis
from repro.core.report import classify_report
from repro.generation import EncodeStrategy, Seed, TrainingMode, TransientWindowType
from repro.uarch import small_boom_config, xiangshan_minimal_config

BOOM = small_boom_config()
XIANGSHAN = xiangshan_minimal_config()


def triggered_phase1(window_type, entropy=3, config=BOOM, **phase1_kwargs):
    phase1 = TransientWindowTriggering(config, **phase1_kwargs)
    for attempt in range(6):
        seed = Seed.fresh(
            entropy=entropy + attempt * 1000,
            window_type=window_type,
            encode_strategies=(EncodeStrategy.DCACHE_INDEX,),
        )
        result = phase1.run(seed)
        if result.triggered:
            return result, seed
    pytest.fail(f"could not trigger {window_type.value} within 6 attempts")


class TestPhase1:
    def test_exception_windows_need_no_training(self):
        result, _ = triggered_phase1(TransientWindowType.LOAD_PAGE_FAULT)
        assert result.training_overhead == 0
        assert result.effective_training_overhead == 0
        assert result.training_required is False

    def test_misprediction_windows_keep_targeted_training(self):
        result, _ = triggered_phase1(TransientWindowType.BRANCH_MISPREDICTION)
        assert result.training_required is True
        assert result.training_overhead > 50          # nop padding dominates (TO)
        assert 1 <= result.effective_training_overhead <= 8  # but few real instructions (ETO)

    def test_training_reduction_prunes_decoys(self):
        result, _ = triggered_phase1(TransientWindowType.RETURN_MISPREDICTION)
        # Three candidates generated, only the derived one survives reduction.
        assert len(result.schedule.training_packets()) == 1

    def test_boom_illegal_instruction_never_triggers(self):
        phase1 = TransientWindowTriggering(BOOM)
        failures = [
            phase1.run(
                Seed.fresh(entropy=e, window_type=TransientWindowType.ILLEGAL_INSTRUCTION)
            ).triggered
            for e in range(3)
        ]
        assert not any(failures)

    def test_xiangshan_illegal_instruction_triggers(self):
        result, _ = triggered_phase1(
            TransientWindowType.ILLEGAL_INSTRUCTION, config=XIANGSHAN
        )
        assert result.triggered

    def test_simulation_budget_reported(self):
        result, _ = triggered_phase1(TransientWindowType.BRANCH_MISPREDICTION)
        # Baseline simulation plus one re-simulation per candidate training packet.
        assert result.simulations_used >= 2


class TestPhase2:
    def test_secret_propagates_and_creates_coverage(self):
        phase1_result, seed = triggered_phase1(TransientWindowType.LOAD_PAGE_FAULT)
        coverage = TaintCoverageMatrix()
        phase2 = TransientExecutionExploration(BOOM)
        result = phase2.run(phase1_result, seed, coverage)
        assert result.taint_increased
        assert result.new_coverage_points > 0
        assert result.window_cycle_range is not None
        assert len(coverage) == result.new_coverage_points

    def test_completed_schedule_contains_window_training(self):
        phase1_result, seed = triggered_phase1(TransientWindowType.BRANCH_MISPREDICTION)
        phase2 = TransientExecutionExploration(BOOM)
        schedule = phase2.complete_window(phase1_result, seed)
        assert schedule.window_training_packets()
        transient = schedule.transient_packet()
        assert transient.metadata.get("window_completed") is True

    def test_second_identical_run_adds_no_coverage(self):
        phase1_result, seed = triggered_phase1(TransientWindowType.LOAD_PAGE_FAULT)
        coverage = TaintCoverageMatrix()
        phase2 = TransientExecutionExploration(BOOM)
        first = phase2.run(phase1_result, seed, coverage)
        second = phase2.run(phase1_result, seed, coverage)
        assert first.new_coverage_points > 0
        assert second.new_coverage_points == 0


class TestPhase3:
    def _phase2_result(self, window_type, strategies=(EncodeStrategy.DCACHE_INDEX,), config=BOOM):
        phase1_result, seed = triggered_phase1(window_type, config=config)
        seed = seed.mutated(encode_strategies=strategies)
        phase2 = TransientExecutionExploration(config)
        return phase2.run(phase1_result, seed, TaintCoverageMatrix())

    def test_dcache_encoding_is_exploitable(self):
        phase2_result = self._phase2_result(TransientWindowType.LOAD_PAGE_FAULT)
        phase3 = TransientLeakageAnalysis(BOOM)
        result = phase3.run(phase2_result)
        assert result.verdict.is_leak
        assert result.verdict.reason in ("live_taint", "timing")
        if result.verdict.reason == "live_taint":
            assert "dcache" in result.verdict.live_sinks

    def test_sanitized_run_removes_encode_taint(self):
        phase2_result = self._phase2_result(TransientWindowType.BRANCH_MISPREDICTION)
        phase3 = TransientLeakageAnalysis(BOOM)
        sanitized = phase3.sanitize_and_rerun(phase2_result.schedule, phase2_result.seed)
        encoded = phase3.encoded_taints(phase2_result.run, sanitized)
        assert encoded  # the encoding block is responsible for extra taints

    def test_liveness_annotations_filter_residual_taint(self):
        phase2_result = self._phase2_result(TransientWindowType.LOAD_PAGE_FAULT)
        with_liveness = TransientLeakageAnalysis(BOOM, use_liveness_annotations=True).run(
            phase2_result
        )
        without_liveness = TransientLeakageAnalysis(BOOM, use_liveness_annotations=False).run(
            phase2_result
        )
        live_with = set(with_liveness.verdict.live_sinks)
        live_without = set(without_liveness.verdict.live_sinks)
        assert live_with <= live_without

    def test_report_classification(self):
        phase2_result = self._phase2_result(TransientWindowType.LOAD_PAGE_FAULT)
        verdict = TransientLeakageAnalysis(BOOM).run(phase2_result).verdict
        report = classify_report(
            iteration=3,
            seed_id=phase2_result.seed.seed_id,
            core_name=BOOM.name,
            window_type=TransientWindowType.LOAD_PAGE_FAULT,
            verdict=verdict,
        )
        assert report.attack_type == "meltdown"
        assert report.window_category == "mem-excp"
        assert report.timing_components
        assert "meltdown" in report.describe()

    def test_spectre_classification(self):
        phase2_result = self._phase2_result(TransientWindowType.RETURN_MISPREDICTION)
        verdict = TransientLeakageAnalysis(BOOM).run(phase2_result).verdict
        report = classify_report(
            iteration=0,
            seed_id=0,
            core_name=BOOM.name,
            window_type=TransientWindowType.RETURN_MISPREDICTION,
            verdict=verdict,
        )
        assert report.attack_type == "spectre"
        assert report.window_category == "mispred"
