"""Tests for stimulus generation: seeds, triggers, training, windows, mutation."""

import pytest

from repro.generation import (
    EncodeStrategy,
    Mutator,
    RandomInstructionGenerator,
    Seed,
    SeedCorpus,
    SeedGenotype,
    TrainingDeriver,
    TrainingMode,
    TransientWindowType,
    TriggerGenerator,
    WindowCompleter,
)
from repro.generation.random_inst import SCRATCH_REGISTERS, SafeRegion
from repro.generation.training import training_statistics
from repro.generation.window_types import (
    WINDOW_TYPE_GROUPS,
    group_of,
    supported_window_types,
    window_types_for_table3,
)
from repro.swapmem import DEFAULT_LAYOUT, PacketKind
from repro.utils.rng import DeterministicRng


class TestWindowTypes:
    def test_groups_cover_all_types(self):
        grouped = [t for members in WINDOW_TYPE_GROUPS.values() for t in members]
        assert set(grouped) == set(TransientWindowType)

    def test_table3_has_eight_columns(self):
        assert len(window_types_for_table3()) == 8

    def test_classification(self):
        assert TransientWindowType.LOAD_PAGE_FAULT.is_exception_type
        assert TransientWindowType.BRANCH_MISPREDICTION.is_misprediction_type
        assert TransientWindowType.BRANCH_MISPREDICTION.needs_training
        assert not TransientWindowType.MEMORY_DISAMBIGUATION.needs_training
        assert TransientWindowType.LOAD_PAGE_FAULT.attack_type == "meltdown"
        assert TransientWindowType.RETURN_MISPREDICTION.attack_type == "spectre"

    def test_group_of(self):
        assert group_of(TransientWindowType.LOAD_MISALIGN) == "Load/Store Misalign"
        with pytest.raises(KeyError):
            group_of("not-a-type")


class TestSeeds:
    def test_seed_rng_deterministic(self):
        seed = Seed.fresh(entropy=5, window_type=TransientWindowType.BRANCH_MISPREDICTION)
        assert seed.rng().randint(0, 10**9) == seed.rng().randint(0, 10**9)

    def test_mutation_lineage(self):
        parent = Seed.fresh(entropy=5, window_type=TransientWindowType.BRANCH_MISPREDICTION)
        child = parent.mutated(encode_block_length=2)
        assert child.parent_id == parent.seed_id
        assert child.generation == parent.generation + 1
        assert child.seed_id != parent.seed_id

    def test_corpus_initialisation(self):
        corpus = SeedCorpus.initial(entropy=1, per_type=1)
        assert len(corpus) == len(TransientWindowType)

    def test_corpus_initialisation_is_order_independent(self):
        # Regression for the module-global _seed_counter footgun: seed ids
        # feed the per-seed rng streams, so two identical initial corpora
        # must come out identical no matter how many ad-hoc seeds were
        # created in the process beforehand.
        first = SeedCorpus.initial(entropy=3, per_type=2)
        Seed.fresh(entropy=9, window_type=TransientWindowType.LOAD_MISALIGN)
        second = SeedCorpus.initial(entropy=3, per_type=2)
        assert first.seeds == second.seeds

    def test_corpus_ranking_and_discard(self):
        corpus = SeedCorpus.initial(entropy=1, per_type=1)
        best_seed = corpus.seeds[3]
        corpus.record_coverage(best_seed, 100)
        assert corpus.best_seeds(1)[0].seed_id == best_seed.seed_id
        corpus.discard(best_seed)
        assert best_seed.seed_id not in [seed.seed_id for seed in corpus.seeds]


class _FakeCore:
    """Duck-typed CoreConfig stand-in (keeps the generation layer uarch-free)."""

    def __init__(self, illegal_opens_window: bool):
        self.illegal_instruction_opens_window = illegal_opens_window


class TestSeedGenotype:
    def make_seed(self, **kwargs):
        defaults = dict(
            seed_id=7,
            entropy=123,
            window_type=TransientWindowType.LOAD_PAGE_FAULT,
            encode_strategies=(EncodeStrategy.DCACHE_INDEX, EncodeStrategy.TLB_INDEX),
            secret_value=0xDEAD,
            core="small-boom",
        )
        defaults.update(kwargs)
        return Seed.fresh(**defaults)

    def test_supported_window_types_gates_illegal_instruction(self):
        full = supported_window_types(_FakeCore(illegal_opens_window=True))
        gated = supported_window_types(_FakeCore(illegal_opens_window=False))
        assert set(full) == set(TransientWindowType)
        assert set(full) - set(gated) == {TransientWindowType.ILLEGAL_INSTRUCTION}

    def test_core_config_exposes_supported_window_types(self):
        from repro.uarch import small_boom_config, xiangshan_minimal_config

        boom = small_boom_config().supported_window_types()
        xiangshan = xiangshan_minimal_config().supported_window_types()
        assert TransientWindowType.ILLEGAL_INSTRUCTION not in boom
        assert TransientWindowType.ILLEGAL_INSTRUCTION in xiangshan

    def test_genotype_is_the_portable_part(self):
        seed = self.make_seed()
        genotype = seed.genotype()
        assert genotype.window_group == group_of(seed.window_type)
        assert genotype.entropy == seed.entropy
        assert genotype.secret_value == seed.secret_value
        assert genotype.encode_strategies == seed.encode_strategies
        # No core binding and no id: both are realization-specific.
        assert not hasattr(genotype, "core")
        assert not hasattr(genotype, "seed_id")

    def test_genotype_wire_roundtrip(self):
        genotype = self.make_seed().genotype()
        assert SeedGenotype.from_dict(genotype.to_dict()) == genotype

    def test_realize_rejects_foreign_window_type(self):
        genotype = self.make_seed().genotype()  # Load/Store Page Fault group
        with pytest.raises(ValueError, match="not in group"):
            genotype.realize(
                seed_id=1,
                core="xiangshan-minimal",
                window_type=TransientWindowType.BRANCH_MISPREDICTION,
            )

    def test_transfer_keeps_group_and_secret_and_lineage(self):
        seed = self.make_seed()
        moved = seed.transfer("xiangshan-minimal", seed_id=99)
        assert moved.core == "xiangshan-minimal"
        assert moved.seed_id == 99
        assert group_of(moved.window_type) == group_of(seed.window_type)
        assert moved.secret_value == seed.secret_value
        assert moved.parent_id == seed.seed_id
        assert moved.generation == seed.generation + 1

    def test_transfer_is_deterministic(self):
        seed = self.make_seed()
        first = seed.transfer("xiangshan-minimal", seed_id=99)
        second = seed.transfer("xiangshan-minimal", seed_id=99)
        assert first == second
        # A different target core re-realizes differently (encodings are
        # core-specific): the per-transfer rng stream includes the target.
        other = seed.transfer("some-other-core", seed_id=99)
        assert (other.entropy, other.encode_strategies) != (
            first.entropy,
            first.encode_strategies,
        )

    def test_transfer_respects_supported_window_types(self):
        seed = self.make_seed(
            window_type=TransientWindowType.ILLEGAL_INSTRUCTION,
            core="xiangshan-minimal",
        )
        boom_like = supported_window_types(_FakeCore(illegal_opens_window=False))
        assert not seed.transferable_to(boom_like)
        with pytest.raises(ValueError, match="no window type"):
            seed.transfer("small-boom", seed_id=1, supported=boom_like)
        # The same seed transfers fine to a core that opens the window.
        assert seed.transferable_to(supported_window_types(_FakeCore(True)))

    def test_compatibility(self):
        seed = self.make_seed()
        assert seed.compatible_with("small-boom")
        assert not seed.compatible_with("xiangshan-minimal")
        unbound = self.make_seed(core="")
        assert unbound.compatible_with("small-boom")
        assert unbound.compatible_with("xiangshan-minimal")

    def test_seed_wire_form_carries_the_core_tag(self):
        seed = self.make_seed()
        assert Seed.from_dict(seed.to_dict()) == seed
        # Pre-tag payloads (older checkpoints) rebuild as unbound seeds.
        legacy = {k: v for k, v in seed.to_dict().items() if k != "core"}
        assert Seed.from_dict(legacy).core == ""


class TestRandomInstructionGenerator:
    def test_scratch_registers_avoid_reserved(self):
        reserved = {0, 1, 2, 5, 6, 7, 8, 9, 10, 11, 13, 14, 15, 16}
        assert not (set(SCRATCH_REGISTERS) & reserved)

    def test_filler_block_length_and_safety(self):
        rng = DeterministicRng(3)
        generator = RandomInstructionGenerator(
            rng, safe_regions=[SafeRegion(DEFAULT_LAYOUT.probe_base, DEFAULT_LAYOUT.probe_size)]
        )
        block = generator.filler_block(50)
        assert len(block) == 50
        for instruction in block:
            destination = instruction.writes()
            if destination is not None:
                assert destination in SCRATCH_REGISTERS or destination == 16
            if instruction.is_branch:
                assert 0 < instruction.imm <= 4 * 4  # short forward branches only

    def test_filler_memory_base_setup(self):
        generator = RandomInstructionGenerator(
            DeterministicRng(3), safe_regions=[SafeRegion(0x2000_0000, 64)]
        )
        block = generator.filler_block(10)
        assert block[0].mnemonic == "lui" and block[0].rd == 16

    def test_materialize_address_roundtrip(self):
        from repro.isa.simulator import compute_alu

        generator = RandomInstructionGenerator(DeterministicRng(3))
        for address in (0x10010000, 0x1002_0FF8, 0x7FFF_F000):
            lui, addi = generator.materialize_address(17, address)
            value = compute_alu(lui, 0, 0, 0)
            value = compute_alu(addi, value, 0, 0)
            assert value == address

    def test_nop_block(self):
        block = RandomInstructionGenerator(DeterministicRng(1)).nop_block(5)
        assert len(block) == 5 and all(instruction.is_nop for instruction in block)


class TestTriggerGenerator:
    @pytest.mark.parametrize("window_type", list(TransientWindowType))
    def test_generation_structure(self, window_type):
        seed = Seed.fresh(entropy=9, window_type=window_type)
        spec = TriggerGenerator().generate(seed)
        assert spec.window_type is window_type
        assert spec.packet.kind is PacketKind.TRANSIENT
        assert len(spec.window_offsets) > 0
        assert spec.trigger_offset < spec.window_offsets[0] or window_type in (
            TransientWindowType.MEMORY_DISAMBIGUATION,
        )
        # The dummy window is made of nops tagged "window".
        for offset in spec.window_offsets:
            instruction = spec.packet.instructions[offset // 4]
            assert instruction.is_nop and instruction.has_tag("window")
        # Exception windows protect the secret; prediction windows do not.
        assert spec.protect_secret == window_type.is_exception_type
        # The packet ends with the swap terminator.
        assert any(instruction.mnemonic == "ecall" for instruction in spec.packet.instructions)

    @pytest.mark.parametrize("window_type", list(TransientWindowType))
    def test_golden_model_validates_architectural_path(self, window_type):
        seed = Seed.fresh(entropy=10, window_type=window_type)
        generator = TriggerGenerator()
        spec = generator.generate(seed)
        assert generator.verify_with_golden_model(spec)

    def test_trigger_is_icache_line_aligned(self):
        seed = Seed.fresh(entropy=11, window_type=TransientWindowType.LOAD_ACCESS_FAULT)
        spec = TriggerGenerator().generate(seed)
        assert spec.trigger_offset % 64 == 0

    def test_misprediction_triggers_read_cold_operand(self):
        seed = Seed.fresh(entropy=12, window_type=TransientWindowType.BRANCH_MISPREDICTION)
        spec = TriggerGenerator().generate(seed)
        assert 0 in spec.packet.metadata.get("operand_writes", {})

    def test_deterministic_for_same_seed(self):
        seed = Seed.fresh(entropy=13, window_type=TransientWindowType.RETURN_MISPREDICTION)
        first = TriggerGenerator().generate(seed)
        second = TriggerGenerator().generate(seed)
        assert [i.render() for i in first.packet.instructions] == [
            i.render() for i in second.packet.instructions
        ]


class TestTrainingDeriver:
    def _spec(self, window_type, entropy=21):
        return TriggerGenerator().generate(Seed.fresh(entropy=entropy, window_type=window_type))

    def test_derived_training_aligns_with_trigger(self):
        spec = self._spec(TransientWindowType.BRANCH_MISPREDICTION)
        packets = TrainingDeriver(mode=TrainingMode.DERIVED).derive_trigger_training(
            spec, DeterministicRng(1), count=3
        )
        assert len(packets) == 3
        derived = packets[0]
        aligned_offset = int(spec.training_hints["trigger_offset"])
        training_instruction = derived.instructions[aligned_offset // 4]
        assert training_instruction.is_branch
        # The training branch jumps to the transient window start.
        assert training_instruction.imm == spec.window_start_offset - aligned_offset

    def test_derived_return_training_pushes_window_address(self):
        spec = self._spec(TransientWindowType.RETURN_MISPREDICTION)
        packets = TrainingDeriver().derive_trigger_training(spec, DeterministicRng(1), count=1)
        call_offset = spec.window_start_offset - 4
        call = packets[0].instructions[call_offset // 4]
        assert call.mnemonic == "jal" and call.rd == 1

    def test_random_training_has_no_alignment(self):
        spec = self._spec(TransientWindowType.BRANCH_MISPREDICTION)
        packets = TrainingDeriver(mode=TrainingMode.RANDOM).derive_trigger_training(
            spec, DeterministicRng(1), count=2
        )
        assert all(packet.kind is PacketKind.TRIGGER_TRAINING for packet in packets)
        assert all(packet.non_nop_count() > 50 for packet in packets)

    def test_window_training_warms_the_secret(self):
        spec = self._spec(TransientWindowType.LOAD_PAGE_FAULT)
        packets = TrainingDeriver().derive_window_training(spec, DeterministicRng(1))
        assert len(packets) == 1
        assert packets[0].kind is PacketKind.WINDOW_TRAINING
        assert any(instruction.is_load for instruction in packets[0].instructions)

    def test_training_statistics(self):
        spec = self._spec(TransientWindowType.INDIRECT_MISPREDICTION)
        packets = TrainingDeriver().derive_trigger_training(spec, DeterministicRng(1), count=2)
        stats = training_statistics(packets)
        assert stats["training_overhead"] > stats["effective_training_overhead"] > 0


class TestWindowCompleter:
    def _completed(self, strategies, window_type=TransientWindowType.LOAD_PAGE_FAULT, mask=False):
        seed = Seed.fresh(
            entropy=31,
            window_type=window_type,
            encode_strategies=strategies,
            mask_high_bits=mask,
        )
        spec = TriggerGenerator().generate(seed)
        packet = WindowCompleter().complete(spec, seed, seed.rng("window"))
        return spec, packet

    def test_window_filled_with_payload(self):
        spec, packet = self._completed((EncodeStrategy.DCACHE_INDEX,))
        window_instructions = [packet.instructions[offset // 4] for offset in spec.window_offsets]
        assert any(instruction.has_tag("secret-access") for instruction in window_instructions)
        assert any(instruction.has_tag("encode") for instruction in window_instructions)
        assert all(instruction.has_tag("window") for instruction in window_instructions)

    def test_payload_fits_window_budget(self):
        for strategy in EncodeStrategy:
            spec, packet = self._completed((strategy,))
            assert packet.instruction_count() == spec.packet.instruction_count()

    def test_mask_high_bits_adds_or_with_high_bit(self):
        spec, packet = self._completed((EncodeStrategy.DCACHE_INDEX,), mask=True)
        window_instructions = [packet.instructions[offset // 4] for offset in spec.window_offsets]
        assert any(instruction.mnemonic == "or" for instruction in window_instructions)

    def test_instructions_outside_window_untouched(self):
        spec, packet = self._completed((EncodeStrategy.FPU_CONTENTION,))
        for offset, original in enumerate(spec.packet.instructions):
            if offset * 4 not in spec.window_offsets:
                assert packet.instructions[offset].render() == original.render()

    def test_metadata_records_strategies(self):
        _, packet = self._completed((EncodeStrategy.TLB_INDEX,))
        assert packet.metadata["encode_strategies"] == [EncodeStrategy.TLB_INDEX.value]


class TestMutator:
    def test_mutate_window_changes_encoding_only(self):
        mutator = Mutator(DeterministicRng(5))
        seed = Seed.fresh(entropy=1, window_type=TransientWindowType.BRANCH_MISPREDICTION)
        child = mutator.mutate_window(seed)
        assert child.window_type is seed.window_type
        assert child.parent_id == seed.seed_id

    def test_mutate_trigger_may_change_type(self):
        mutator = Mutator(DeterministicRng(6))
        seed = Seed.fresh(entropy=1, window_type=TransientWindowType.BRANCH_MISPREDICTION)
        types = {mutator.mutate_trigger(seed).window_type for _ in range(20)}
        assert len(types) > 1

    def test_mutate_secret_changes_value(self):
        mutator = Mutator(DeterministicRng(7))
        seed = Seed.fresh(entropy=1, window_type=TransientWindowType.LOAD_PAGE_FAULT)
        assert mutator.mutate_secret(seed).secret_value != seed.secret_value

    def test_initial_population(self):
        population = Mutator(DeterministicRng(8)).initial_population(10)
        assert len(population) == 10
        assert all(seed.encode_strategies for seed in population)
