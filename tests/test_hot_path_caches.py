"""Tests for the hot-path caches: Phase-1 simulation memo, assembly cache,
golden-model verify memo, census dirty-flagging and the profile plumbing.

The shared contract under test: every cache is *transparent* — the same
campaign run with every cache force-disabled produces byte-identical
deterministic wire forms.
"""

import pytest

from repro.core.backends import (
    AsyncBackend,
    InlineBackend,
    ProcessPoolBackend,
    ShardTask,
    run_shard_task,
)
from repro.core.distributed import shard_task_from_wire, shard_task_to_wire
from repro.core.engine import EngineConfiguration, ParallelCampaignEngine
from repro.core.fuzzer import FuzzerConfiguration, run_quick_campaign
from repro.core.phase1 import (
    SimulationCache,
    TransientWindowTriggering,
    schedule_fingerprint,
)
from repro.analysis import profile_hotspot_table
from dataclasses import replace

from repro.generation.seeds import Seed
from repro.generation.window_types import TransientWindowType
from repro.generation.trigger import TriggerGenerator
from repro.isa.assembler import Assembler, AssemblyCache
from repro.isa.instructions import make_instruction, nop
from repro.swapmem.packets import SwapSchedule
from repro.uarch.boom import small_boom_config
from repro.uarch.processor import Processor

BOOM = small_boom_config()


def deterministic_dict(iterations=6, entropy=11, **overrides):
    result = run_quick_campaign(BOOM, iterations, entropy=entropy, **overrides)
    return result.to_dict(include_timing=False)


def make_seed(seed_id=7, entropy=13):
    return Seed(
        seed_id=seed_id,
        entropy=entropy,
        window_type=TransientWindowType.BRANCH_MISPREDICTION,
    )


class TestSimulationCacheTransparency:
    def test_cache_on_off_campaigns_are_byte_identical(self):
        cached = deterministic_dict()
        uncached = deterministic_dict(sim_cache=False)
        assert cached == uncached

    def test_force_disable_flag_is_byte_identical(self):
        cached = deterministic_dict()
        TransientWindowTriggering.force_disable_sim_cache = True
        try:
            forced = deterministic_dict()
        finally:
            TransientWindowTriggering.force_disable_sim_cache = False
        assert cached == forced

    def test_identical_schedules_hit_the_cache(self):
        phase1 = TransientWindowTriggering(BOOM)
        seed = make_seed()
        first = phase1.run(seed)
        hits_before = phase1.simulation_cache.hits
        second = phase1.run(seed)
        assert phase1.simulation_cache.hits > hits_before
        assert first.triggered == second.triggered
        assert first.simulations_used == second.simulations_used

    def test_fingerprint_ignores_packet_names(self):
        phase1 = TransientWindowTriggering(BOOM)
        _, schedule = phase1.generate_schedule(make_seed())
        renamed = SwapSchedule(
            packets=[
                replace(packet, name=f"x_{index}")
                for index, packet in enumerate(schedule.packets)
            ],
            protect_secret_before_transient=schedule.protect_secret_before_transient,
            name="other-name",
        )
        assert schedule_fingerprint(schedule) == schedule_fingerprint(renamed)


class TestSimulationCacheBounds:
    def test_eviction_at_capacity_boundary(self):
        cache = SimulationCache(capacity=2)
        cache.put(("a",), "ra")
        cache.put(("b",), "rb")
        assert cache.get(("a",)) == "ra"  # refresh a: b is now LRU
        cache.put(("c",), "rc")
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(("b",)) is None  # the LRU entry was evicted
        assert cache.get(("a",)) == "ra"
        assert cache.get(("c",)) == "rc"
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["capacity"] == 2
        assert stats["misses"] == 1  # only the lookup of the evicted key

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SimulationCache(capacity=0)


class TestAssemblyCache:
    def test_cached_assembly_matches_uncached(self):
        instructions = (
            nop(),
            make_instruction("addi", rd=5, rs1=0, imm=1),
            make_instruction("addi", rd=6, rs1=5, imm=2),
        )
        cache = AssemblyCache()
        cached = Assembler(base=0x8000_0000, cache=cache).assemble_instructions(
            list(instructions)
        )
        plain = Assembler(base=0x8000_0000).assemble_instructions(list(instructions))
        assert cached.entry == plain.entry
        assert [list(s.instructions) for s in cached.sections] == [
            list(s.instructions) for s in plain.sections
        ]
        again = Assembler(base=0x8000_0000, cache=cache).assemble_instructions(
            list(instructions)
        )
        assert again is cached  # shared by reference on a hit
        assert cache.hits == 1

    def test_eviction_at_capacity_boundary(self):
        cache = AssemblyCache(capacity=2)
        assembler = Assembler(base=0x8000_0000, cache=cache)
        programs = [
            assembler.assemble_instructions([make_instruction("addi", rd=5, rs1=0, imm=imm)])
            for imm in (1, 2, 3)
        ]
        assert len(cache) == 2
        assert cache.evictions == 1
        # The first program's key was evicted: assembling it again misses.
        misses_before = cache.misses
        rebuilt = assembler.assemble_instructions(
            [make_instruction("addi", rd=5, rs1=0, imm=1)]
        )
        assert cache.misses == misses_before + 1
        assert rebuilt is not programs[0]
        assert [list(s.instructions) for s in rebuilt.sections] == [
            list(s.instructions) for s in programs[0].sections
        ]

    def test_enabled_flag_bypasses_lookup(self):
        cache = AssemblyCache()
        assembler = Assembler(base=0x8000_0000, cache=cache)
        assembler.assemble_instructions([nop()])
        cache.enabled = False
        try:
            hits_before = cache.hits
            assembler.assemble_instructions([nop()])
            assert cache.hits == hits_before
        finally:
            cache.enabled = True


class TestTrainingReduction:
    def test_reduction_matches_without_packet_reference(self):
        """The in-place surviving-list reduction equals the naive chained
        ``without_packet`` reference, run by run."""
        phase1 = TransientWindowTriggering(BOOM, sim_cache=False)
        for seed_id in (3, 7, 21):
            seed = make_seed(seed_id=seed_id)
            spec, schedule = phase1.generate_schedule(seed)
            baseline = phase1._simulate(schedule, seed.secret_value)
            if not baseline.window_triggered():
                continue
            reduced, simulations, _ = phase1._reduce_training(
                schedule, seed.secret_value, baseline
            )
            # Reference implementation: rebuild via chained without_packet.
            reference = schedule
            reference_simulations = 0
            for packet in schedule.training_packets():
                candidate = reference.without_packet(packet.name)
                run = phase1._simulate(candidate, seed.secret_value)
                reference_simulations += 1
                if run.window_triggered():
                    reference = candidate
            assert [p.name for p in reduced.packets] == [
                p.name for p in reference.packets
            ]
            assert simulations == reference_simulations

    def test_verify_memo_matches_uncached_verdicts(self):
        generator = TriggerGenerator()
        specs = [generator.generate(make_seed(seed_id=i)) for i in range(4)]
        cached = [generator.verify_with_golden_model(spec) for spec in specs]
        assert generator.verify_misses >= len(specs)
        hits_before = generator.verify_hits
        repeat = [generator.verify_with_golden_model(spec) for spec in specs]
        assert generator.verify_hits >= hits_before + len(specs)
        TriggerGenerator.force_disable_verify_cache = True
        try:
            uncached = [generator.verify_with_golden_model(spec) for spec in specs]
        finally:
            TriggerGenerator.force_disable_verify_cache = False
        assert cached == repeat == uncached


class TestCensusDirtyFlag:
    def test_force_recompute_is_byte_identical(self):
        baseline = deterministic_dict(iterations=4, entropy=5)
        Processor.force_census_recompute = True
        try:
            recomputed = deterministic_dict(iterations=4, entropy=5)
        finally:
            Processor.force_census_recompute = False
        assert baseline == recomputed


class TestBackendsCacheEquivalence:
    @staticmethod
    def _normalize(payload):
        # sim_stats and the metrics snapshot count physical simulations, DUT
        # reuses, and cache hits/misses, which differ cache-on vs cache-off by
        # design; the deterministic payload must not.
        entry = {
            k: v
            for k, v in payload.items()
            if k not in ("wall_seconds", "sim_stats", "metrics")
        }
        entry["result"] = dict(
            entry["result"], elapsed_seconds=0.0, first_bug_seconds=None
        )
        for report in entry["result"]["reports"]:
            report["wall_clock_seconds"] = 0.0
        return entry

    def _tasks(self, sim_cache):
        return [
            ShardTask(
                slice_index=index,
                epoch=0,
                iterations=3,
                configuration=FuzzerConfiguration(
                    core=BOOM,
                    entropy=41 + index,
                    seed_id_base=100 * index,
                    sim_cache=sim_cache,
                ),
            )
            for index in range(2)
        ]

    def test_cache_on_off_identical_across_backends(self):
        reference = [
            self._normalize(p) for p in InlineBackend().run_epoch(self._tasks(True))
        ]
        for backend in (
            InlineBackend(),
            ProcessPoolBackend(max_workers=2),
            AsyncBackend(concurrency=2),
        ):
            try:
                payloads = backend.run_epoch(self._tasks(False))
            finally:
                backend.close()
            assert [self._normalize(p) for p in payloads] == reference


class TestProfilePlumbing:
    def test_profiled_task_payload_carries_hotspots(self):
        task = ShardTask(
            slice_index=0,
            epoch=0,
            iterations=2,
            configuration=FuzzerConfiguration(core=BOOM, entropy=17),
            profile=5,
        )
        payload = run_shard_task(task)
        profile = payload["profile"]
        assert profile["slice_index"] == 0
        assert 0 < len(profile["top"]) <= 5
        for row in profile["top"]:
            assert set(row) == {"function", "calls", "tottime", "cumtime"}

    def test_profile_never_changes_results(self):
        def run(profile):
            task = ShardTask(
                slice_index=0,
                epoch=0,
                iterations=2,
                configuration=FuzzerConfiguration(core=BOOM, entropy=17),
                profile=profile,
            )
            payload = run_shard_task(task)
            payload.pop("profile", None)
            payload.pop("wall_seconds", None)
            # latency histograms in the metrics snapshot are wall clock
            payload.pop("metrics", None)
            payload["result"] = dict(
                payload["result"], elapsed_seconds=0.0, first_bug_seconds=None
            )
            for report in payload["result"]["reports"]:
                report["wall_clock_seconds"] = 0.0
            return payload

        assert run(0) == run(3)

    def test_engine_collects_profile_log(self):
        configuration = EngineConfiguration(
            fuzzer=FuzzerConfiguration(core=BOOM),
            shards=2,
            iterations=6,
            sync_epochs=1,
            executor="inline",
            profile=4,
        )
        result = ParallelCampaignEngine(configuration).run()
        assert result.profile_log
        rows = profile_hotspot_table(result.profile_log, top=4)
        assert rows
        assert rows == sorted(rows, key=lambda row: -row["cumtime"])

    def test_wire_roundtrip_defaults(self):
        task = ShardTask(
            slice_index=1,
            epoch=2,
            iterations=3,
            configuration=FuzzerConfiguration(core=BOOM, sim_cache=False),
            profile=7,
        )
        wire = shard_task_to_wire(task)
        back = shard_task_from_wire(wire)
        assert back.profile == 7
        assert back.configuration.sim_cache is False
        # Payloads from an older coordinator lack the new keys entirely.
        del wire["profile"]
        del wire["configuration"]["sim_cache"]
        legacy = shard_task_from_wire(wire)
        assert legacy.profile == 0
        assert legacy.configuration.sim_cache is True
