"""Tests for taint propagation policies, shadow simulation, CellIFT and diffIFT."""

import pytest
from hypothesis import given, strategies as st

from repro.ift import (
    CellIFTPass,
    CellIFTTestbench,
    DiffIFTPass,
    DifferentialTestbench,
    LivenessChecker,
    TaintMode,
    collect_annotations,
    flatten_memories,
)
from repro.ift import policies
from repro.ift.shadow import TaintSimulator
from repro.rtl import (
    NetlistSimulator,
    build_branch_unit,
    build_counter,
    build_forwarding_pipeline,
    build_lfb_with_mshr,
    build_rob_slice,
)
from repro.utils.bitops import mask

U8 = st.integers(min_value=0, max_value=255)


class TestPolicies:
    @given(a=U8, b=U8, a_t=U8, b_t=U8)
    def test_no_taint_in_no_taint_out(self, a, b, a_t, b_t):
        """Every policy must produce zero taint when no input is tainted."""
        assert policies.and_taint(a, b, 0, 0) == 0
        assert policies.or_taint(a, b, 0, 0, 8) == 0
        assert policies.xor_taint(0, 0) == 0
        assert policies.add_taint(0, 0, 8) == 0
        assert policies.mux_taint(1, a, b, 0, 0, 0, 8) == 0
        assert policies.comparison_taint(0, 0) == 0
        assert policies.register_enable_taint(1, a, b, 0, 0, 0, 8) == 0

    @given(a=U8, b_t=U8)
    def test_and_taint_policy1(self, a, b_t):
        """Policy 1: a tainted B bit only matters where A is 1 (or B tainted too)."""
        result = policies.and_taint(a, 0, 0, b_t)
        assert result == (a & b_t)

    def test_and_taint_both_tainted(self):
        assert policies.and_taint(0, 0, 0xF0, 0x0F) == 0
        assert policies.and_taint(0, 0, 0xFF, 0xFF) == 0xFF

    def test_or_taint_masks_dominated_bits(self):
        # When the untainted input already forces the output to 1 the taint is hidden.
        assert policies.or_taint(0xFF, 0x00, 0x00, 0x0F, 8) == 0

    def test_add_taint_carries_upward(self):
        assert policies.add_taint(0b0000_0100, 0, 8) == 0b1111_1100
        assert policies.add_taint(0b1000_0000, 0, 8) == 0b1000_0000

    def test_shift_taint(self):
        assert policies.shift_taint(0xF, 0b0011, 2, 0, 8, left=True) == 0b1100
        assert policies.shift_taint(0xF, 0b1100, 2, 0, 8, left=False) == 0b0011
        # Tainted shift amount taints the whole word when the value is non-zero.
        assert policies.shift_taint(0xF, 0, 1, 1, 8, left=True) == 0xFF

    def test_mux_data_taint_selection(self):
        a_t, b_t = 0x0F, 0xF0
        assert policies.mux_taint(0, 0, 0, 0, a_t, b_t, 8) == a_t
        assert policies.mux_taint(1, 0, 0, 0, a_t, b_t, 8) == b_t

    def test_mux_control_taint_cellift_vs_diffift(self):
        # Tainted select, different data: CellIFT always propagates the
        # control term; diffIFT requires the cross-instance difference.
        kwargs = dict(sel=0, a=0xAA, b=0x55, sel_t=1, a_t=0, b_t=0, width=8)
        assert policies.mux_taint(**kwargs, mode=TaintMode.CELLIFT) == 0xFF
        assert policies.mux_taint(**kwargs, sel_diff=0, mode=TaintMode.DIFFIFT) == 0
        assert policies.mux_taint(**kwargs, sel_diff=1, mode=TaintMode.DIFFIFT) == 0xFF

    def test_comparison_taint_diff_gated(self):
        assert policies.comparison_taint(1, 0, out_diff=1, mode=TaintMode.CELLIFT) == 1
        assert policies.comparison_taint(1, 0, out_diff=0, mode=TaintMode.DIFFIFT) == 0
        assert policies.comparison_taint(1, 0, out_diff=1, mode=TaintMode.DIFFIFT) == 1

    def test_register_enable_control_taint(self):
        kwargs = dict(en=0, d=0xAA, q=0x55, en_t=1, d_t=0, q_t=0, width=8)
        assert policies.register_enable_taint(**kwargs, mode=TaintMode.CELLIFT) == 0xFF
        assert policies.register_enable_taint(**kwargs, en_diff=0, mode=TaintMode.DIFFIFT) == 0

    def test_memory_policies(self):
        assert policies.memory_read_taint(0x0F, 0, 8) == 0x0F
        assert policies.memory_read_taint(0, 1, 8, mode=TaintMode.CELLIFT) == 0xFF
        assert policies.memory_read_taint(0, 1, 8, addr_diff=0, mode=TaintMode.DIFFIFT) == 0
        assert policies.memory_write_taint(1, 0x0F, 0xF0, 0, 0, 8) == 0x0F
        assert policies.memory_write_taint(0, 0x0F, 0xF0, 0, 0, 8) == 0xF0
        assert policies.memory_write_taint(1, 0, 0, 0, 1, 8, mode=TaintMode.CELLIFT) == 0xFF

    def test_reduce_or_taint_pinned_by_untainted_one(self):
        assert policies.reduce_or_taint(0b10, 0b01, 2) == 0
        assert policies.reduce_or_taint(0b00, 0b01, 2) == 1

    @given(width=st.integers(min_value=1, max_value=32), a_t=st.integers(min_value=0), b_t=st.integers(min_value=0))
    def test_policies_stay_within_width(self, width, a_t, b_t):
        a_t &= mask(width)
        b_t &= mask(width)
        assert policies.add_taint(a_t, b_t, width) <= mask(width)
        assert policies.or_taint(0, 0, a_t, b_t, width) <= mask(width)
        assert policies.mux_taint(1, 0, 0, 1, a_t, b_t, width) <= mask(width)


class TestTaintSimulator:
    def test_data_taint_flows_through_pipeline(self):
        simulator = TaintSimulator(build_forwarding_pipeline(stages=2), mode=TaintMode.CELLIFT)
        simulator.taint_signal("data_in")
        sums = simulator.run(5, inputs={"data_in": 0x1, "bypass": 0})
        assert sums[-1] > 0
        assert any(simulator.shadow.taint_of(f"stage_{i}") for i in range(2))

    def test_untainted_run_stays_clean(self):
        simulator = TaintSimulator(build_rob_slice(num_entries=4), mode=TaintMode.CELLIFT)
        simulator.run(10, inputs={"enq_valid": 1, "enq_uopc": 3, "rollback": 0, "rollback_idx": 0})
        assert simulator.state_taint_sum() == 0

    def test_mode_instance_validation(self):
        with pytest.raises(ValueError):
            TaintSimulator(build_counter(), mode=TaintMode.DIFFIFT, num_instances=1)
        with pytest.raises(ValueError):
            TaintSimulator(build_counter(), mode=TaintMode.CELLIFT, num_instances=2)

    def test_rollback_taint_explosion_cellift_vs_diffift(self):
        """The Figure 2 scenario: CellIFT explodes on rollback, diffIFT does not."""
        stimulus_enqueue = {"enq_valid": 1, "enq_uopc": 0x3F, "rollback": 0, "rollback_idx": 0}
        stimulus_rollback = {"enq_valid": 0, "enq_uopc": 0, "rollback": 1, "rollback_idx": 0}

        cellift = CellIFTTestbench(build_rob_slice(num_entries=8))
        cellift.taint_signal("enq_uopc")
        for _ in range(8):
            cellift.step(stimulus_enqueue)
        before = cellift.simulator.state_taint_sum()
        # Rolling back with a *tainted* tail index: taint the rollback index to
        # model the tainted squash target.
        cellift.taint_signal("rollback_idx")
        cellift.step(stimulus_rollback)
        cellift.step(stimulus_enqueue)
        after = cellift.simulator.state_taint_sum()
        assert after >= before  # CellIFT never loses taint across the rollback

        diff = DifferentialTestbench(build_rob_slice(num_entries=8))
        diff.taint_signal("enq_uopc")
        for _ in range(8):
            diff.step(stimulus_enqueue)
        diff.taint_signal("rollback_idx")
        diff.step(stimulus_rollback)  # identical rollback index in both instances
        diff.step(stimulus_enqueue)
        assert diff.simulator.state_taint_sum() <= after

    def test_taints_by_module(self):
        testbench = DifferentialTestbench(build_lfb_with_mshr(num_entries=4))
        testbench.simulator.taint_signal("refill_data")
        testbench.step(
            {"refill_valid": 1, "refill_idx": 1, "refill_data": 5, "invalidate": 0, "invalidate_idx": 0}
        )
        by_module = testbench.taints_by_module()
        assert by_module.get("lfb", 0) > 0


class TestCellIFTPass:
    def test_flatten_removes_memories(self):
        builder_module = build_lfb_with_mshr()
        flattened = flatten_memories(builder_module)
        assert flattened.memories == {}

    def test_flatten_preserves_behaviour(self):
        """Property: the flattened memory circuit computes the same values."""
        from repro.rtl.builder import CircuitBuilder

        builder = CircuitBuilder("memtest")
        addr = builder.input("addr", 3)
        data = builder.input("data", 8)
        wen = builder.input("wen", 1)
        builder.memory("m", width=8, depth=8)
        rdata = builder.mem_read("m", addr, name="rdata")
        builder.mem_write("m", addr, data, wen)
        builder.output(rdata)
        original_module = builder.build()

        original = NetlistSimulator(original_module)
        flattened = NetlistSimulator(flatten_memories(original_module))
        stimulus = [
            {"addr": 1, "data": 0x11, "wen": 1},
            {"addr": 2, "data": 0x22, "wen": 1},
            {"addr": 1, "data": 0, "wen": 0},
            {"addr": 2, "data": 0, "wen": 0},
            {"addr": 5, "data": 0, "wen": 0},
        ]
        for inputs in stimulus:
            assert original.step(dict(inputs))["rdata"] == flattened.step(dict(inputs))["rdata"]

    def test_cellift_pass_increases_cell_count(self):
        module = build_lfb_with_mshr(num_entries=8)
        result = CellIFTPass().run(module)
        assert result.stats.instrumented_cells >= result.stats.original_cells
        assert result.stats.memories_flattened == 0  # library circuit uses registers
        assert result.stats.compile_seconds >= 0.0

    def test_diffift_pass_is_structure_preserving(self):
        module = build_rob_slice()
        result = DiffIFTPass().run(module)
        assert result.module is module
        assert result.stats.extra["control_cells"] > 0

    def test_cellift_compile_slower_than_diffift_on_memory_heavy_design(self):
        from repro.rtl.builder import CircuitBuilder

        builder = CircuitBuilder("memheavy")
        addr = builder.input("addr", 6)
        data = builder.input("data", 32)
        wen = builder.input("wen", 1)
        for index in range(4):
            builder.memory(f"m{index}", width=32, depth=64)
            builder.mem_read(f"m{index}", addr, name=f"r{index}")
            builder.mem_write(f"m{index}", addr, data, wen)
        module = builder.build()
        cellift = CellIFTPass().run(module)
        diffift = DiffIFTPass().run(module)
        assert cellift.stats.instrumented_cells > diffift.stats.instrumented_cells
        assert cellift.stats.compile_seconds > diffift.stats.compile_seconds


class TestLiveness:
    def test_annotations_collected(self):
        annotations = collect_annotations(build_lfb_with_mshr(num_entries=4))
        sinks = {annotation.sink for annotation in annotations}
        assert {"lb_0", "lb_1", "lb_2", "lb_3"} <= sinks
        lanes = {annotation.sink: annotation.lane for annotation in annotations}
        assert lanes["lb_2"] == 2

    def test_live_and_dead_classification(self):
        module = build_lfb_with_mshr(num_entries=4)
        checker = LivenessChecker(module)
        # Valid bit for lane 2 set: taint in lb_2 is exploitable.
        assert checker.is_live("lb_2", {"mshr_valid_vec": 0b0100})
        # Valid bit cleared: the stale taint is a false positive.
        assert not checker.is_live("lb_2", {"mshr_valid_vec": 0b0000})

    def test_unannotated_sink_defaults_to_live(self):
        checker = LivenessChecker(build_counter())
        assert checker.is_live("count", {})

    def test_filter_live_sinks(self):
        module = build_lfb_with_mshr(num_entries=4)
        checker = LivenessChecker(module)
        tainted = {"lb_0": 0xFF, "lb_1": 0xFF}
        live = checker.filter_live_sinks(tainted, {"mshr_valid_vec": 0b0001})
        dead = checker.dead_sinks(tainted, {"mshr_valid_vec": 0b0001})
        assert set(live) == {"lb_0"}
        assert set(dead) == {"lb_1"}

    def test_annotation_description(self):
        annotations = collect_annotations(build_lfb_with_mshr(num_entries=2))
        assert "guarded by" in annotations[0].describe()


class TestEndToEndLfbScenario:
    def test_stale_lfb_taint_is_reachable_but_dead(self):
        """The C2-2 false-positive scenario: tainted data behind an invalid MSHR."""
        module = build_lfb_with_mshr(num_entries=4)
        testbench = CellIFTTestbench(module)
        testbench.taint_signal("refill_data")
        testbench.step(
            {"refill_valid": 1, "refill_idx": 0, "refill_data": 0x5A, "invalidate": 0, "invalidate_idx": 0}
        )
        testbench.step(
            {"refill_valid": 0, "refill_idx": 0, "refill_data": 0, "invalidate": 1, "invalidate_idx": 0}
        )
        # One idle cycle so combinational observers (the packed valid vector)
        # reflect the post-invalidation register state.
        testbench.step(
            {"refill_valid": 0, "refill_idx": 0, "refill_data": 0, "invalidate": 0, "invalidate_idx": 0}
        )
        taints = testbench.simulator.tainted_registers()
        assert any(name.startswith("lb_0") for name in taints)  # reachability
        checker = LivenessChecker(module)
        values = testbench.simulator.instances[0].register_values()
        values["mshr_valid_vec"] = testbench.simulator.instances[0].value("mshr_valid_vec")
        live = checker.filter_live_sinks({"lb_0": taints.get("lb_0", 0)}, values)
        assert live == {}  # ...but not exploitable
