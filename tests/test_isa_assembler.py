"""Tests for the two-pass assembler and the program representation."""

import pytest

from repro.isa import Assembler, AssemblyError, Program, Section
from repro.isa.instructions import Instruction, nop


class TestSectionsAndPrograms:
    def test_section_add_and_mark(self):
        section = Section("text", 0x1000)
        section.add(nop()).mark("after_nop").add(nop())
        assert section.labels["after_nop"] == 4
        assert section.label_address("after_nop") == 0x1004
        assert section.size == 8

    def test_duplicate_label_rejected(self):
        section = Section("text", 0x1000)
        section.mark("a")
        with pytest.raises(ValueError):
            section.mark("a")

    def test_program_overlap_rejected(self):
        program = Program()
        first = Section("a", 0x1000)
        first.add(nop())
        second = Section("b", 0x1000)
        second.add(nop())
        program.add_section(first)
        with pytest.raises(ValueError):
            program.add_section(second)

    def test_instruction_at(self):
        program = Program()
        section = Section("text", 0x1000)
        section.add(Instruction("addi", rd=1, rs1=0, imm=5))
        program.add_section(section)
        assert program.instruction_at(0x1000).rd == 1
        assert program.instruction_at(0x2000) is None
        assert program.instruction_at(0x1002) is None  # not word aligned

    def test_label_lookup_across_sections(self):
        program = Program()
        a = Section("a", 0x1000)
        a.mark("start")
        a.add(nop())
        b = Section("b", 0x2000)
        b.mark("other")
        b.add(nop())
        program.add_section(a)
        program.add_section(b)
        assert program.label_address("start") == 0x1000
        assert program.label_address("other") == 0x2000
        with pytest.raises(KeyError):
            program.label_address("missing")


class TestAssembler:
    def test_simple_program(self):
        program = Assembler(base=0x1000).assemble(
            """
            start:
              addi t0, zero, 5
              addi t1, t0, 1
            """
        )
        instructions = [i for _, i in program.all_instructions()]
        assert len(instructions) == 2
        assert instructions[0].rd == 5 and instructions[0].imm == 5

    def test_label_resolution_forward_and_backward(self):
        program = Assembler(base=0x1000).assemble(
            """
            top:
              beq t0, t1, bottom
              nop
            bottom:
              j top
            """
        )
        branch = program.instruction_at(0x1000)
        assert branch.imm == 8  # two instructions forward
        jump = program.instruction_at(0x1008)
        assert jump.imm == ((-8) & ((1 << 64) - 1))

    def test_pseudo_instructions(self):
        program = Assembler(base=0x0).assemble(
            """
              nop
              mv a0, a1
              li t0, 42
              li t1, 0x12345
              ret
              beqz a0, end
            end:
              nop
            """
        )
        rendered = [i.render() for _, i in program.all_instructions()]
        assert rendered[0] == "nop"
        assert rendered[1] == "addi a0, a1, 0"
        assert "addi t0, zero, 42" in rendered[2]
        assert any(r.startswith("lui") for r in rendered)  # large li uses lui
        assert any("jalr zero, 0(ra)" in r for r in rendered)

    def test_la_resolves_pc_relative(self):
        program = Assembler(base=0x1000).assemble(
            """
              la t0, data
              nop
            data:
              nop
            """,
        )
        # auipc+addi must land exactly on the label address.
        from repro.isa import IsaSimulator

        simulator = IsaSimulator(program)
        simulator.run(max_instructions=2)
        assert simulator.read_register(5) == program.label_address("data")

    def test_memory_operands(self):
        program = Assembler(base=0x0).assemble("ld a0, 16(sp)\nsd a1, -8(sp)\n")
        load = program.instruction_at(0)
        store = program.instruction_at(4)
        assert load.rs1 == 2 and load.imm == 16
        assert store.rs2 == 11 and store.imm == ((-8) & ((1 << 64) - 1))

    def test_external_symbols(self):
        program = Assembler(base=0x1000).assemble(
            "la t0, secret\n", extra_symbols={"secret": 0x8000}
        )
        from repro.isa import IsaSimulator

        simulator = IsaSimulator(program)
        simulator.run(max_instructions=2)
        assert simulator.read_register(5) == 0x8000

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().assemble("bogus t0, t1\n")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().assemble("j nowhere\n")

    def test_unknown_register_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().assemble("addi q0, zero, 1\n")

    def test_assemble_instructions_with_labels(self):
        instructions = [nop(), Instruction("addi", rd=1, rs1=0, imm=1)]
        program = Assembler(base=0x4000).assemble_instructions(
            instructions, labels={"second": 1}
        )
        assert program.label_address("second") == 0x4004
        assert program.entry == 0x4000

    def test_comments_ignored(self):
        program = Assembler().assemble("nop # trailing comment\n// full line\nnop\n")
        assert program.instruction_count == 2
