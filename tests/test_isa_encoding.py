"""Encode/decode round-trip tests for the RV64 subset."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import EncodingError, decode_word, encode_instruction
from repro.isa.instructions import Instruction

REGS = st.integers(min_value=0, max_value=31)


class TestFixedEncodings:
    def test_ecall(self):
        assert encode_instruction(Instruction("ecall")) == 0x00000073

    def test_nop_encoding(self):
        word = encode_instruction(Instruction("addi", rd=0, rs1=0, imm=0))
        assert word == 0x00000013

    def test_illegal_is_all_zero(self):
        assert encode_instruction(Instruction("illegal")) == 0

    def test_decode_fixed(self):
        assert decode_word(0x00000073).mnemonic == "ecall"
        assert decode_word(0).mnemonic == "illegal"

    def test_unknown_word_rejected(self):
        with pytest.raises(EncodingError):
            decode_word(0xFFFFFFFF)


class TestRoundTrip:
    def _roundtrip(self, instruction: Instruction) -> Instruction:
        return decode_word(encode_instruction(instruction))

    def test_r_type(self):
        original = Instruction("add", rd=3, rs1=4, rs2=5)
        decoded = self._roundtrip(original)
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.rs2) == ("add", 3, 4, 5)

    def test_i_type_negative_imm(self):
        original = Instruction("addi", rd=7, rs1=8, imm=(-16) & ((1 << 64) - 1))
        decoded = self._roundtrip(original)
        assert decoded.mnemonic == "addi"
        assert decoded.imm == (-16) & ((1 << 64) - 1)

    def test_load_store(self):
        load = self._roundtrip(Instruction("ld", rd=9, rs1=10, imm=24))
        assert (load.mnemonic, load.rd, load.rs1, load.imm) == ("ld", 9, 10, 24)
        store = self._roundtrip(Instruction("sd", rs1=11, rs2=12, imm=40))
        assert (store.mnemonic, store.rs1, store.rs2, store.imm) == ("sd", 11, 12, 40)

    def test_branch(self):
        branch = self._roundtrip(Instruction("bne", rs1=1, rs2=2, imm=64))
        assert (branch.mnemonic, branch.rs1, branch.rs2, branch.imm) == ("bne", 1, 2, 64)

    def test_branch_negative_offset(self):
        offset = (-32) & ((1 << 64) - 1)
        branch = self._roundtrip(Instruction("beq", rs1=3, rs2=4, imm=offset))
        assert branch.imm == offset

    def test_jal(self):
        jal = self._roundtrip(Instruction("jal", rd=1, imm=2048))
        assert (jal.mnemonic, jal.rd, jal.imm) == ("jal", 1, 2048)

    def test_lui_auipc(self):
        lui = self._roundtrip(Instruction("lui", rd=5, imm=0x12345000))
        assert (lui.mnemonic, lui.rd, lui.imm) == ("lui", 5, 0x12345000)
        auipc = self._roundtrip(Instruction("auipc", rd=6, imm=0x1000))
        assert (auipc.mnemonic, auipc.imm) == ("auipc", 0x1000)

    def test_shift_immediates(self):
        slli = self._roundtrip(Instruction("slli", rd=2, rs1=3, imm=13))
        assert (slli.mnemonic, slli.imm) == ("slli", 13)
        srai = self._roundtrip(Instruction("srai", rd=2, rs1=3, imm=7))
        assert (srai.mnemonic, srai.imm) == ("srai", 7)

    @given(rd=REGS, rs1=REGS, rs2=REGS, mnemonic=st.sampled_from(["add", "sub", "and", "or", "xor", "sltu", "mul"]))
    def test_r_type_roundtrip_property(self, rd, rs1, rs2, mnemonic):
        original = Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        decoded = self._roundtrip(original)
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.rs2) == (mnemonic, rd, rs1, rs2)

    @given(rd=REGS, rs1=REGS, imm=st.integers(min_value=-2048, max_value=2047))
    def test_addi_roundtrip_property(self, rd, rs1, imm):
        encoded_imm = imm & ((1 << 64) - 1)
        decoded = self._roundtrip(Instruction("addi", rd=rd, rs1=rs1, imm=encoded_imm))
        assert decoded.imm == encoded_imm

    @given(rs1=REGS, rs2=REGS, imm=st.integers(min_value=-2048, max_value=2047).map(lambda x: (x * 2) & ((1 << 64) - 1)))
    def test_branch_roundtrip_property(self, rs1, rs2, imm):
        decoded = self._roundtrip(Instruction("bne", rs1=rs1, rs2=rs2, imm=imm))
        assert decoded.imm == imm

    def test_every_word_is_32_bits(self):
        for instruction in (
            Instruction("add", rd=1, rs1=2, rs2=3),
            Instruction("ld", rd=1, rs1=2, imm=8),
            Instruction("jal", rd=1, imm=16),
            Instruction("lui", rd=1, imm=0xFFFFF000),
        ):
            assert 0 <= encode_instruction(instruction) < (1 << 32)
