"""Tests for the symbolic instruction model."""

import pytest

from repro.isa.instructions import (
    Instruction,
    InstructionClass,
    OPCODE_TABLE,
    make_instruction,
    nop,
)


class TestOpcodeTable:
    def test_basic_coverage(self):
        for mnemonic in ("add", "addi", "ld", "sd", "beq", "jal", "jalr", "ecall", "illegal"):
            assert mnemonic in OPCODE_TABLE

    def test_loads_have_sizes(self):
        assert OPCODE_TABLE["lb"].mem_bytes == 1
        assert OPCODE_TABLE["lh"].mem_bytes == 2
        assert OPCODE_TABLE["lw"].mem_bytes == 4
        assert OPCODE_TABLE["ld"].mem_bytes == 8

    def test_stores_do_not_write_rd(self):
        for mnemonic in ("sb", "sh", "sw", "sd"):
            assert not OPCODE_TABLE[mnemonic].writes_rd

    def test_branches_read_both_sources(self):
        for mnemonic in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            info = OPCODE_TABLE[mnemonic]
            assert info.reads_rs1 and info.reads_rs2 and not info.writes_rd

    def test_word_ops_flagged(self):
        assert OPCODE_TABLE["addw"].is_word_op
        assert not OPCODE_TABLE["add"].is_word_op


class TestInstructionProperties:
    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            Instruction("not_an_instruction")

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction("add", rd=32)

    def test_classification(self):
        assert Instruction("ld", rd=1, rs1=2).is_load
        assert Instruction("sd", rs1=1, rs2=2).is_store
        assert Instruction("beq", rs1=1, rs2=2).is_branch
        assert Instruction("jal", rd=1).is_jump
        assert Instruction("fdiv.d", rd=1, rs1=2, rs2=3).is_fp
        assert Instruction("illegal").is_illegal
        assert Instruction("ecall").is_system

    def test_return_detection(self):
        ret = Instruction("jalr", rd=0, rs1=1, imm=0)
        assert ret.is_return
        assert Instruction("jalr", rd=0, rs1=5, imm=0).is_return is False
        assert Instruction("jalr", rd=1, rs1=1, imm=0).is_return is False

    def test_call_detection(self):
        assert Instruction("jal", rd=1, imm=16).is_call
        assert Instruction("jal", rd=0, imm=16).is_call is False

    def test_may_fault(self):
        assert Instruction("ld", rd=1, rs1=2).may_fault
        assert Instruction("illegal").may_fault
        assert Instruction("ecall").may_fault
        assert Instruction("add", rd=1, rs1=2, rs2=3).may_fault is False

    def test_nop_detection(self):
        assert nop().is_nop
        assert Instruction("addi", rd=1, rs1=0, imm=0).is_nop is False

    def test_writes_and_reads(self):
        add = Instruction("add", rd=3, rs1=1, rs2=2)
        assert add.writes() == 3
        assert add.reads() == (1, 2)
        store = Instruction("sd", rs1=4, rs2=5)
        assert store.writes() is None
        assert store.reads() == (4, 5)
        lui = Instruction("lui", rd=6, imm=0x1000)
        assert lui.reads() == ()

    def test_writes_to_x0_is_none(self):
        assert Instruction("add", rd=0, rs1=1, rs2=2).writes() is None

    def test_tags_are_immutable_additions(self):
        base = nop()
        tagged = base.with_tag("window")
        assert tagged.has_tag("window")
        assert not base.has_tag("window")
        double = tagged.with_tag("encode")
        assert double.has_tag("window") and double.has_tag("encode")

    def test_with_imm(self):
        assert Instruction("addi", rd=1, rs1=0, imm=1).with_imm(7).imm == 7


class TestRendering:
    def test_render_formats(self):
        assert Instruction("add", rd=10, rs1=11, rs2=12).render() == "add a0, a1, a2"
        assert Instruction("ld", rd=5, rs1=6, imm=8).render() == "ld t0, 8(t1)"
        assert Instruction("sd", rs1=6, rs2=5, imm=16).render() == "sd t0, 16(t1)"
        assert "beq" in Instruction("beq", rs1=1, rs2=2, imm=8).render()
        assert Instruction("addi", rd=0, rs1=0, imm=0).render() == "nop"

    def test_render_uses_label_when_present(self):
        branch = Instruction("beq", rs1=1, rs2=2, imm=8, target_label="window")
        assert "window" in branch.render()

    def test_make_instruction_helper(self):
        assert make_instruction("add", rd=1, rs1=2, rs2=3).mnemonic == "add"
