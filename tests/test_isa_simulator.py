"""Tests for the architectural (golden model) simulator."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Assembler, IsaSimulator, Permission, SimMemory, TrapCause
from repro.isa.instructions import Instruction
from repro.isa.simulator import branch_taken, compute_alu, effective_address, next_pc
from repro.utils.bitops import mask, to_signed, to_unsigned

U64 = st.integers(min_value=0, max_value=mask(64))


def run_asm(source, memory=None, max_instructions=200, extra_symbols=None, base=0x1000):
    program = Assembler(base=base).assemble(source, extra_symbols=extra_symbols)
    simulator = IsaSimulator(program, memory=memory)
    result = simulator.run(max_instructions=max_instructions)
    return simulator, result


class TestAluSemantics:
    @given(a=U64, b=U64)
    def test_add_matches_python(self, a, b):
        assert compute_alu(Instruction("add", rd=1, rs1=2, rs2=3), a, b, 0) == (a + b) & mask(64)

    @given(a=U64, b=U64)
    def test_xor_and_or(self, a, b):
        assert compute_alu(Instruction("xor", rd=1, rs1=2, rs2=3), a, b, 0) == a ^ b
        assert compute_alu(Instruction("and", rd=1, rs1=2, rs2=3), a, b, 0) == a & b
        assert compute_alu(Instruction("or", rd=1, rs1=2, rs2=3), a, b, 0) == a | b

    @given(a=U64, b=U64)
    def test_sltu(self, a, b):
        expected = 1 if a < b else 0
        assert compute_alu(Instruction("sltu", rd=1, rs1=2, rs2=3), a, b, 0) == expected

    @given(a=U64)
    def test_addiw_sign_extends(self, a):
        result = compute_alu(Instruction("addiw", rd=1, rs1=2, imm=0), a, 0, 0)
        assert result == to_unsigned(to_signed(a & mask(32), 32), 64)

    def test_divide_by_zero_semantics(self):
        assert compute_alu(Instruction("div", rd=1, rs1=2, rs2=3), 10, 0, 0) == mask(64)
        assert compute_alu(Instruction("divu", rd=1, rs1=2, rs2=3), 10, 0, 0) == mask(64)
        assert compute_alu(Instruction("remu", rd=1, rs1=2, rs2=3), 10, 0, 0) == 10

    def test_lui_sign_extension(self):
        value = compute_alu(Instruction("lui", rd=1, imm=0x80000000), 0, 0, 0)
        assert value == to_unsigned(-0x80000000, 64)

    @given(a=U64, b=U64)
    def test_branch_taken_consistency(self, a, b):
        assert branch_taken(Instruction("beq", rs1=1, rs2=2), a, b) == (a == b)
        assert branch_taken(Instruction("bne", rs1=1, rs2=2), a, b) == (a != b)
        assert branch_taken(Instruction("bltu", rs1=1, rs2=2), a, b) == (a < b)

    def test_branch_taken_rejects_non_branch(self):
        with pytest.raises(ValueError):
            branch_taken(Instruction("add", rd=1, rs1=2, rs2=3), 0, 0)

    def test_effective_address_and_next_pc(self):
        load = Instruction("ld", rd=1, rs1=2, imm=to_unsigned(-8, 64))
        assert effective_address(load, 0x1008) == 0x1000
        jalr = Instruction("jalr", rd=0, rs1=2, imm=3)
        assert next_pc(jalr, 0x100, 0x2000, 0) == 0x2002  # lowest bit cleared


class TestMemoryModel:
    def test_read_write_roundtrip(self):
        memory = SimMemory()
        memory.map_range(0x1000, 0x100)
        memory.write(0x1000, 0xDEADBEEF, 4)
        assert memory.read(0x1000, 4) == 0xDEADBEEF
        assert memory.read(0x1002, 1) == 0xAD

    def test_unmapped_access_fault(self):
        memory = SimMemory()
        with pytest.raises(Exception) as excinfo:
            memory.check(0x5000, 8, Permission.READ)
        assert excinfo.value.cause == TrapCause.LOAD_ACCESS_FAULT

    def test_permission_page_fault(self):
        memory = SimMemory()
        memory.map_page(0x3000, Permission.READ)
        memory.check(0x3000, 8, Permission.READ)
        with pytest.raises(Exception) as excinfo:
            memory.check(0x3000, 8, Permission.WRITE)
        assert excinfo.value.cause == TrapCause.STORE_PAGE_FAULT

    def test_permission_change(self):
        memory = SimMemory()
        memory.map_range(0x4000, 0x1000)
        memory.set_permission(0x4000, Permission.EXECUTE)
        with pytest.raises(Exception):
            memory.check(0x4000, 8, Permission.READ)

    def test_write_and_read_bytes(self):
        memory = SimMemory()
        memory.map_range(0, 64)
        memory.write_bytes(0, b"hello")
        assert memory.read_bytes(0, 5) == b"hello"


class TestProgramExecution:
    def test_arithmetic_program(self):
        simulator, result = run_asm(
            """
              li t0, 6
              li t1, 7
              mul t2, t0, t1
              ecall
            """
        )
        assert simulator.read_register(7) == 42
        assert result.trap is not None and result.trap.cause == TrapCause.ECALL

    def test_loop_execution(self):
        simulator, _ = run_asm(
            """
              li a0, 0
              li a1, 5
            loop:
              addi a0, a0, 1
              blt a0, a1, loop
              ecall
            """
        )
        assert simulator.read_register(10) == 5

    def test_memory_program(self):
        memory = SimMemory()
        memory.map_range(0x1000, 0x1000)
        memory.map_range(0x8000, 0x1000)
        simulator, _ = run_asm(
            """
              li t0, 0x8000
              li t1, 123
              sd t1, 0(t0)
              ld t2, 0(t0)
              ecall
            """,
            memory=memory,
        )
        assert simulator.read_register(7) == 123
        assert memory.read(0x8000, 8) == 123

    def test_call_and_return(self):
        simulator, _ = run_asm(
            """
              call func
              li t1, 1
              ecall
            func:
              li t0, 9
              ret
            """
        )
        assert simulator.read_register(5) == 9
        assert simulator.read_register(6) == 1

    def test_misaligned_load_traps(self):
        memory = SimMemory()
        memory.map_range(0x1000, 0x1000)
        memory.map_range(0x8000, 0x1000)
        _, result = run_asm(
            """
              li t0, 0x8001
              ld t1, 0(t0)
            """,
            memory=memory,
        )
        assert result.trap.cause == TrapCause.MISALIGNED_LOAD

    def test_page_fault_on_protected_page(self):
        memory = SimMemory()
        memory.map_range(0x1000, 0x1000)
        memory.map_page(0x8000, Permission.EXECUTE)
        _, result = run_asm(
            """
              li t0, 0x8000
              ld t1, 0(t0)
            """,
            memory=memory,
        )
        assert result.trap.cause == TrapCause.LOAD_PAGE_FAULT

    def test_illegal_instruction_traps(self):
        program = Assembler(base=0x1000).assemble_instructions([Instruction("illegal")])
        simulator = IsaSimulator(program)
        result = simulator.run()
        assert result.trap.cause == TrapCause.ILLEGAL_INSTRUCTION

    def test_trap_vector_redirects(self):
        memory = SimMemory()
        memory.map_range(0x1000, 0x1000)
        program = Assembler(base=0x1000).assemble(
            """
              ecall
              nop
            handler:
              li t0, 77
              ebreak
            """
        )
        simulator = IsaSimulator(program, memory=memory, trap_vector=program.label_address("handler"))
        simulator.run(max_instructions=10)
        # After the first trap the handler runs until the ebreak.
        assert simulator.read_register(5) == 77

    def test_x0_is_always_zero(self):
        simulator, _ = run_asm("addi zero, zero, 5\necall\n")
        assert simulator.read_register(0) == 0

    def test_stop_pcs(self):
        program = Assembler(base=0x1000).assemble("nop\nnop\nnop\necall\n")
        simulator = IsaSimulator(program)
        result = simulator.run(stop_pcs={0x1008})
        assert result.final_pc == 0x1008
        assert result.instructions_retired == 2
