"""Tests for the netlist IR, builder and simulator."""

import pytest

from repro.rtl import (
    CircuitBuilder,
    NetlistSimulator,
    build_branch_unit,
    build_counter,
    build_forwarding_pipeline,
    build_lfb_with_mshr,
    build_rob_slice,
)
from repro.rtl.cells import Cell, CellType
from repro.rtl.simulator import CombinationalLoopError


class TestBuilderAndModule:
    def test_signal_bookkeeping(self):
        builder = CircuitBuilder("m")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        total = builder.add(a, b, name="sum")
        builder.output(total)
        module = builder.build()
        assert module.width_of("sum") == 8
        assert module.inputs == ["a", "b"]
        assert module.outputs == ["sum"]

    def test_duplicate_signal_rejected(self):
        builder = CircuitBuilder("m")
        builder.input("a", 4)
        with pytest.raises(ValueError):
            builder.input("a", 4)

    def test_unknown_signal_rejected(self):
        builder = CircuitBuilder("m")
        with pytest.raises(ValueError):
            builder.output("missing")

    def test_double_driver_rejected(self):
        builder = CircuitBuilder("m")
        a = builder.input("a", 4)
        b = builder.input("b", 4)
        builder.and_(a, b, name="x")
        module = builder.module
        with pytest.raises(ValueError):
            module.add_cell(
                Cell(name="dup", cell_type=CellType.OR, output="x", connections={"a": a, "b": b})
            )

    def test_cell_missing_port_rejected(self):
        with pytest.raises(ValueError):
            Cell(name="bad", cell_type=CellType.AND, output="o", connections={"a": "x"})

    def test_register_width_mismatch_detected(self):
        builder = CircuitBuilder("m")
        builder.register("r", 8)
        builder.module.registers["r"].width = 4
        with pytest.raises(ValueError):
            builder.module.validate()

    def test_state_bit_count(self):
        module = build_lfb_with_mshr(num_entries=4, data_width=32)
        # 4 valid bits + 4 x 32-bit data registers
        assert module.state_bit_count() == 4 + 4 * 32

    def test_module_paths_recorded(self):
        module = build_lfb_with_mshr()
        assert {"mshr", "lfb"} <= module.module_paths()


class TestNetlistSimulator:
    def test_counter_counts_with_enable(self):
        simulator = NetlistSimulator(build_counter(width=8))
        for _ in range(5):
            simulator.step({"en": 1})
        assert simulator.value("count") == 5
        simulator.step({"en": 0})
        assert simulator.value("count") == 5

    def test_counter_wraps(self):
        simulator = NetlistSimulator(build_counter(width=4))
        for _ in range(17):
            simulator.step({"en": 1})
        assert simulator.value("count") == 1

    def test_reset(self):
        simulator = NetlistSimulator(build_counter())
        simulator.step({"en": 1})
        simulator.reset()
        assert simulator.value("count") == 0
        assert simulator.state.cycle == 0

    def test_branch_unit_selects_target(self):
        simulator = NetlistSimulator(build_branch_unit(width=16))
        simulator.step({"lhs": 5, "rhs": 5, "taken_target": 0x100, "fallthrough": 0x4})
        assert simulator.value("pc") == 0x100
        simulator.step({"lhs": 5, "rhs": 6, "taken_target": 0x100, "fallthrough": 0x4})
        assert simulator.value("pc") == 0x4

    def test_forwarding_pipeline_bypass(self):
        simulator = NetlistSimulator(build_forwarding_pipeline(stages=3, width=16))
        simulator.step({"data_in": 0xAB, "bypass": 1})
        assert simulator.value("result_reg") == 0xAB

    def test_forwarding_pipeline_delay(self):
        simulator = NetlistSimulator(build_forwarding_pipeline(stages=2, width=16))
        outputs = []
        for cycle in range(5):
            simulator.step({"data_in": cycle + 1, "bypass": 0})
            outputs.append(simulator.value("result_reg"))
        # All registers clock together, so the value injected in cycle 0
        # reaches the output register after two further edges.
        assert outputs[2] == 1
        assert outputs[3] == 2

    def test_rob_slice_updates_addressed_entry(self):
        simulator = NetlistSimulator(build_rob_slice(num_entries=4))
        simulator.step({"enq_valid": 1, "enq_uopc": 0x11, "rollback": 0, "rollback_idx": 0})
        simulator.step({"enq_valid": 1, "enq_uopc": 0x22, "rollback": 0, "rollback_idx": 0})
        assert simulator.value("rob_0_uopc") == 0x11
        assert simulator.value("rob_1_uopc") == 0x22
        assert simulator.value("rob_tail_idx") == 2

    def test_rob_slice_rollback_moves_tail(self):
        simulator = NetlistSimulator(build_rob_slice(num_entries=4))
        for _ in range(3):
            simulator.step({"enq_valid": 1, "enq_uopc": 0x7, "rollback": 0, "rollback_idx": 0})
        simulator.step({"enq_valid": 0, "enq_uopc": 0, "rollback": 1, "rollback_idx": 1})
        assert simulator.value("rob_tail_idx") == 1

    def test_lfb_invalidation_keeps_stale_data(self):
        simulator = NetlistSimulator(build_lfb_with_mshr(num_entries=4, data_width=32))
        simulator.step(
            {"refill_valid": 1, "refill_idx": 2, "refill_data": 0xCAFE, "invalidate": 0, "invalidate_idx": 0}
        )
        assert simulator.value("lb_2") == 0xCAFE
        assert simulator.value("mshr_2_valid") == 1
        simulator.step(
            {"refill_valid": 0, "refill_idx": 0, "refill_data": 0, "invalidate": 1, "invalidate_idx": 2}
        )
        # The MSHR flips to invalid but the stale data stays resident.
        assert simulator.value("mshr_2_valid") == 0
        assert simulator.value("lb_2") == 0xCAFE

    def test_unknown_input_rejected(self):
        simulator = NetlistSimulator(build_counter())
        with pytest.raises(KeyError):
            simulator.set_inputs({"bogus": 1})

    def test_combinational_loop_detected(self):
        builder = CircuitBuilder("loop")
        a = builder.input("a", 1)
        builder.signal("x", 1)
        builder.signal("y", 1)
        builder.module.add_cell(
            Cell(name="c1", cell_type=CellType.AND, output="x", connections={"a": a, "b": "y"})
        )
        builder.module.add_cell(
            Cell(name="c2", cell_type=CellType.OR, output="y", connections={"a": "x", "b": a})
        )
        with pytest.raises(CombinationalLoopError):
            NetlistSimulator(builder.module)

    def test_memory_read_write_cells(self):
        builder = CircuitBuilder("memtest")
        addr = builder.input("addr", 4)
        data = builder.input("data", 16)
        wen = builder.input("wen", 1)
        builder.memory("m", width=16, depth=16)
        rdata = builder.mem_read("m", addr, name="rdata")
        builder.mem_write("m", addr, data, wen)
        builder.output(rdata)
        simulator = NetlistSimulator(builder.build())
        simulator.step({"addr": 3, "data": 0xBEEF, "wen": 1})
        outputs = simulator.step({"addr": 3, "data": 0, "wen": 0})
        assert outputs["rdata"] == 0xBEEF
        assert simulator.memory_contents("m")[3] == 0xBEEF

    def test_slice_and_concat(self):
        builder = CircuitBuilder("sc")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        joined = builder.concat(a, b, name="joined")
        high = builder.slice_(joined, 15, 8, name="high")
        builder.output(high)
        simulator = NetlistSimulator(builder.build())
        outputs = simulator.step({"a": 0xAB, "b": 0xCD})
        assert outputs["high"] == 0xAB

    def test_evaluation_order_is_stable(self):
        module = build_rob_slice(num_entries=2)
        simulator = NetlistSimulator(module)
        order = [cell.name for cell in simulator.evaluation_order]
        assert len(order) == len(set(order))
        assert len(order) == len(module.combinational_cells())
