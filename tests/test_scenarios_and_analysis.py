"""Tests for the attack-scenario library, analysis helpers and bug ablations."""

import pytest

from repro.analysis import (
    TaintCurve,
    coverage_curve_statistics,
    coverage_improvement,
    cross_core_transfer_table,
    extract_taint_curve,
    iterations_to_reach,
    per_core_breakdown,
    summarize_training_overhead,
    training_overhead_table,
)
from repro.core import DejaVuzzFuzzer, FuzzerConfiguration
from repro.core.report import CampaignResult
from repro.scenarios import ATTACK_SCENARIOS, build_attack_schedule, run_attack
from repro.swapmem import DualCoreHarness
from repro.uarch import TaintTrackingMode, small_boom_config, xiangshan_minimal_config

BOOM = small_boom_config()


class TestAttackScenarios:
    def test_all_five_scenarios_registered(self):
        assert set(ATTACK_SCENARIOS) == {
            "spectre-v1",
            "spectre-v2",
            "spectre-rsb",
            "spectre-v4",
            "meltdown",
        }

    @pytest.mark.parametrize("name", sorted(ATTACK_SCENARIOS))
    def test_scenarios_trigger_on_boom(self, name):
        result = run_attack(name, BOOM, taint_mode=TaintTrackingMode.DIFFIFT)
        assert result.window_triggered
        assert result.primary.processor.taint.max_taint_bits() > 0

    def test_build_attack_schedule_returns_completed_window(self):
        schedule, seed = build_attack_schedule("spectre-v1", BOOM)
        transient = schedule.transient_packet()
        assert transient.metadata.get("window_completed") is True
        assert schedule.window_training_packets()
        assert seed.window_type.name == "BRANCH_MISPREDICTION"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            build_attack_schedule("spectre-v99", BOOM)

    def test_cellift_taints_more_than_diffift(self):
        """The Figure 6 relationship: CellIFT over-taints, diffIFT stays bounded."""
        diff_result = run_attack("spectre-v1", BOOM, taint_mode=TaintTrackingMode.DIFFIFT)
        cell_result = run_attack("spectre-v1", BOOM, taint_mode=TaintTrackingMode.CELLIFT)
        diff_peak = max(diff_result.primary.processor.taint.taint_sum_series())
        cell_peak = max(cell_result.primary.processor.taint.taint_sum_series())
        assert cell_peak > 5 * diff_peak

    def test_false_negative_mode_suppresses_control_taints(self):
        diff_result = run_attack("meltdown", BOOM, taint_mode=TaintTrackingMode.DIFFIFT)
        fn_result = run_attack(
            "meltdown", BOOM, taint_mode=TaintTrackingMode.DIFFIFT, false_negative_mode=True
        )
        diff_peak = max(diff_result.primary.processor.taint.taint_sum_series())
        fn_peak = max(fn_result.primary.processor.taint.taint_sum_series())
        assert fn_peak <= diff_peak
        # Data taints still propagate in the false-negative case.
        assert fn_peak > 0


class TestBugAblations:
    def test_phantom_rsb_requires_the_bug(self):
        """B2: transiently written RAS entries survive only on the buggy core."""
        buggy = run_attack("spectre-rsb", small_boom_config())
        patched = run_attack("spectre-rsb", small_boom_config(enable_bugs=False))
        assert buggy.window_triggered and patched.window_triggered
        buggy_ras = buggy.primary.processor.predictors.ras
        patched_ras = patched.primary.processor.predictors.ras
        assert buggy_ras.restore_below_tos is False
        assert patched_ras.restore_below_tos is True

    def test_spectre_reload_contention_only_with_bug(self):
        """B5: the shared load write-back port only exists on the buggy core."""
        buggy = run_attack("spectre-v1", xiangshan_minimal_config())
        patched = run_attack("spectre-v1", xiangshan_minimal_config(enable_bugs=False))
        assert buggy.primary.processor.lsu.writeback_port_shared is True
        assert patched.primary.processor.lsu.writeback_port_shared is False

    def test_patched_core_produces_fewer_or_equal_findings(self):
        buggy_campaign = DejaVuzzFuzzer(
            FuzzerConfiguration(core=xiangshan_minimal_config(), entropy=13)
        ).run_campaign(12)
        patched_campaign = DejaVuzzFuzzer(
            FuzzerConfiguration(core=xiangshan_minimal_config(enable_bugs=False), entropy=13)
        ).run_campaign(12)
        assert len(patched_campaign.matched_known_bugs()) <= len(buggy_campaign.matched_known_bugs())


class TestAnalysisHelpers:
    def test_taint_curve_extraction(self):
        from repro.uarch.taint import TaintCensus

        log = [
            TaintCensus(cycle=10, element_counts={"dcache": 1}),
            TaintCensus(cycle=11, element_counts={"dcache": 2}),
        ]
        curve = extract_taint_curve(log, label="diffIFT", cycle_offset=10)
        assert curve.cycles == [0, 1]
        assert curve.peak() == curve.final() == 2 * 512
        assert curve.value_at(0) == 512
        assert curve.saturated(512) and not curve.saturated(10**9)

    def test_empty_curve(self):
        curve = TaintCurve(label="empty")
        assert curve.peak() == 0 and curve.final() == 0

    def test_summarize_training_overhead(self):
        assert summarize_training_overhead([]) is None
        assert summarize_training_overhead([10, 20]) == 15

    def test_training_overhead_table_marks_missing_types(self):
        campaign = CampaignResult(fuzzer_name="dejavuzz", core="small-boom")
        campaign.training_overhead["Branch Misprediction"] = [100, 110]
        campaign.effective_training_overhead["Branch Misprediction"] = [2, 4]
        rows = training_overhead_table({"dejavuzz": campaign})
        row = rows[0]
        assert row["Branch Misprediction"] == (105.0, 3.0)
        assert row["Illegal Instruction"] is None

    def test_coverage_statistics_and_improvement(self):
        stats = coverage_curve_statistics([[1, 5, 9], [2, 4, 11]])
        assert stats["mean_final"] == 10
        assert coverage_improvement([0, 10, 47], [0, 5, 10]) == pytest.approx(4.7)
        assert coverage_improvement([], [1]) is None
        assert iterations_to_reach([0, 2, 5, 9], 5) == 2
        assert iterations_to_reach([0, 1], 10) is None

    def test_per_core_breakdown_rows(self):
        campaign = CampaignResult(fuzzer_name="dejavuzz", core="small-boom+xiangshan-minimal")
        campaign.core_breakdown = {
            "xiangshan-minimal": {"iterations": 8, "reports": 2, "triggered_windows": 3},
            "small-boom": {"iterations": 10, "reports": 1, "triggered_windows": 4},
        }
        rows = per_core_breakdown(campaign)
        assert [row["core"] for row in rows] == ["small-boom", "xiangshan-minimal"]
        assert rows[0]["iterations"] == 10 and rows[1]["reports"] == 2

    def test_per_core_breakdown_falls_back_for_serial_campaigns(self):
        campaign = CampaignResult(fuzzer_name="dejavuzz", core="small-boom")
        campaign.iterations_run = 6
        rows = per_core_breakdown(campaign)
        assert rows == [
            {"core": "small-boom", "iterations": 6, "reports": 0, "triggered_windows": 0}
        ]

    def test_worker_utilization_table_aggregates_deliveries(self):
        from repro.analysis import worker_utilization_table

        log = [
            {"worker": "w001", "name": "hostB:9", "epoch": 0, "slice": 1,
             "wall_seconds": 0.4, "reassigned": False},
            {"worker": "w000", "name": "hostA:7", "epoch": 0, "slice": 0,
             "wall_seconds": 0.5, "reassigned": False},
            {"worker": "w000", "name": "hostA:7", "epoch": 1, "slice": 1,
             "wall_seconds": 0.25, "reassigned": True},
            {"worker": "w000", "name": "hostA:7", "epoch": 1, "slice": 0,
             "wall_seconds": 0.25, "reassigned": False},
        ]
        rows = worker_utilization_table(log)
        assert [row["worker"] for row in rows] == ["w000", "w001"]
        w0 = rows[0]
        assert w0["tasks"] == 3
        assert w0["epochs"] == 2
        assert w0["task_seconds"] == pytest.approx(1.0)
        assert w0["reassigned_tasks"] == 1  # inherited from the dead worker
        assert rows[1] == {
            "worker": "w001", "name": "hostB:9", "tasks": 1, "epochs": 1,
            "task_seconds": 0.4, "reassigned_tasks": 0,
        }
        assert worker_utilization_table([]) == []

    def test_simulator_process_table_aggregates_per_slice(self):
        from repro.analysis import simulator_process_table

        log = [
            {"slice_index": 1, "epoch": 0, "spawns": 1, "restarts": 0,
             "steps": 10, "step_seconds_total": 0.5, "mean_step_seconds": 0.05},
            {"slice_index": 0, "epoch": 0, "spawns": 1, "restarts": 0,
             "steps": 8, "step_seconds_total": 0.4, "mean_step_seconds": 0.05},
            {"slice_index": 0, "epoch": 1, "spawns": 1, "restarts": 1,
             "steps": 12, "step_seconds_total": 0.2, "mean_step_seconds": 0.0167},
        ]
        rows = simulator_process_table(log)
        assert [row["slice"] for row in rows] == [0, 1]
        slice0 = rows[0]
        assert slice0["tasks"] == 2
        assert slice0["spawns"] == 2
        assert slice0["restarts"] == 1  # the epoch-1 crash recovery
        assert slice0["steps"] == 20
        assert slice0["step_seconds_total"] == pytest.approx(0.6)
        assert slice0["mean_step_seconds"] == pytest.approx(0.03)
        assert rows[1]["tasks"] == 1 and rows[1]["restarts"] == 0
        assert simulator_process_table([]) == []

    def test_cross_core_transfer_table_aggregates_edges(self):
        transfers = [
            {"donor_core": "small-boom", "target_core": "xiangshan-minimal",
             "new_global_points": 4, "reports": 1},
            {"donor_core": "small-boom", "target_core": "xiangshan-minimal",
             "new_global_points": 0, "reports": 0},
            {"donor_core": "xiangshan-minimal", "target_core": "small-boom",
             "new_global_points": None, "reports": None},
        ]
        rows = cross_core_transfer_table(transfers)
        assert len(rows) == 2
        boom_to_xs = rows[0]
        assert boom_to_xs["donor_core"] == "small-boom"
        assert boom_to_xs["transfers"] == 2
        assert boom_to_xs["productive"] == 1
        assert boom_to_xs["new_points"] == 4
        assert boom_to_xs["with_reports"] == 1
        # A transfer that never ran (no next epoch) counts as not productive.
        assert rows[1]["transfers"] == 1 and rows[1]["productive"] == 0
        assert cross_core_transfer_table([]) == []
