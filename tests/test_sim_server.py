"""Tests for the simulator-server protocol: the six verbs over a real
``python -m repro.sim.server`` subprocess, the documented edge cases
(malformed frame, READ before LOAD, double QUIT), and snapshot/restore
round-trip byte-identity."""

import json
import subprocess
import time

import pytest

from repro.core import FuzzerConfiguration, ShardTask
from repro.core.backends import run_shard_task
from repro.core.distributed import shard_task_to_wire
from repro.sim.client import (
    SimProtocolError,
    SimServerProcess,
    default_server_command,
    server_environment,
)
from repro.uarch import small_boom_config

BOOM = small_boom_config()


def make_task(**overrides):
    defaults = dict(
        slice_index=0,
        epoch=0,
        iterations=3,
        configuration=FuzzerConfiguration(core=BOOM, entropy=31, seed_id_base=10),
    )
    defaults.update(overrides)
    return ShardTask(**defaults)


@pytest.fixture(scope="module")
def server():
    """One long-lived server process shared by the happy-path tests (each
    test LOADs its own workload, which resets the session)."""
    process = SimServerProcess(request_timeout=60.0)
    yield process
    process.quit()


class TestVerbs:
    def test_load_step_to_completion_matches_inproc(self, server):
        task = make_task()
        response = server.request({"type": "LOAD", "task": shard_task_to_wire(task)})
        assert response["type"] == "LOADED"
        assert response["steps"] == 0
        assert isinstance(response["digest"], str)

        steps = 0
        while True:
            response = server.request({"type": "STEP"})
            assert response["type"] == "STEP"
            if response["done"]:
                payload = response["payload"]
                break
            steps += 1
            assert response["steps"] == steps
            assert response["step"]["phase"] in ("window", "explore")
            assert response["step"]["simulations"] >= 0

        reference = run_shard_task(make_task())
        assert payload["points"] == reference["points"]
        assert payload["top_seeds"] == reference["top_seeds"]
        assert (
            payload["result"]["coverage_history"]
            == reference["result"]["coverage_history"]
        )
        assert steps > 0

    def test_read_reports_live_coverage(self, server):
        task = make_task()
        server.request({"type": "LOAD", "task": shard_task_to_wire(task)})
        server.request({"type": "STEP"})
        state = server.request({"type": "READ"})
        assert state["type"] == "STATE"
        assert state["loaded"] and not state["finished"]
        assert state["steps"] == 1
        assert state["coverage"]["total"] == sum(
            state["coverage"]["per_module"].values()
        )
        assert list(state["coverage"]["per_module"]) == sorted(
            state["coverage"]["per_module"]
        )
        assert isinstance(state["digest"], str)

    def test_load_replaces_the_previous_workload(self, server):
        server.request({"type": "LOAD", "task": shard_task_to_wire(make_task())})
        server.request({"type": "STEP"})
        response = server.request(
            {"type": "LOAD", "task": shard_task_to_wire(make_task(epoch=1))}
        )
        assert response["steps"] == 0
        state = server.request({"type": "READ"})
        assert state["steps"] == 0

    def test_digest_is_deterministic_across_processes(self):
        task_wire = shard_task_to_wire(make_task())

        def digest_after(steps):
            process = SimServerProcess(request_timeout=60.0)
            try:
                process.request({"type": "LOAD", "task": task_wire})
                for _ in range(steps):
                    process.request({"type": "STEP"})
                return process.request({"type": "SNAPSHOT"})["digest"]
            finally:
                process.quit()

        assert digest_after(2) == digest_after(2)
        assert digest_after(2) != digest_after(1)


class TestEdgeCases:
    def test_malformed_frame_survives(self, server):
        # A raw non-JSON line must produce an ERROR frame, not kill the
        # session: the next request is answered normally.
        server._process.stdin.write(b"this is not json\n")
        server._process.stdin.flush()
        line = server._read_line(time.monotonic() + 30)
        response = json.loads(line)
        assert response["type"] == "ERROR"
        assert "malformed" in response["error"]

        with pytest.raises(SimProtocolError, match="malformed"):
            server.request({"no_type": True})

        follow_up = server.request(
            {"type": "LOAD", "task": shard_task_to_wire(make_task())}
        )
        assert follow_up["type"] == "LOADED"

    def test_read_before_load(self):
        process = SimServerProcess(request_timeout=60.0)
        try:
            for verb in ("READ", "STEP", "SNAPSHOT"):
                with pytest.raises(SimProtocolError, match="before LOAD"):
                    process.request({"type": verb})
            # The session survives the errors.
            assert process.request(
                {"type": "LOAD", "task": shard_task_to_wire(make_task())}
            )["type"] == "LOADED"
        finally:
            process.quit()

    def test_unknown_verb(self, server):
        with pytest.raises(SimProtocolError, match="unknown request type"):
            server.request({"type": "FLY"})

    def test_step_after_finish(self, server):
        server.request({"type": "LOAD", "task": shard_task_to_wire(make_task())})
        while not server.request({"type": "STEP"})["done"]:
            pass
        with pytest.raises(SimProtocolError, match="already finished"):
            server.request({"type": "STEP"})

    def test_double_quit_exits_cleanly(self):
        # Two QUITs on one session: the server answers the first with BYE and
        # exits; the second frame is never read.  Exit code must be 0 and the
        # stream must contain exactly one BYE.
        process = subprocess.Popen(
            default_server_command(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=server_environment(),
            text=True,
        )
        out, _ = process.communicate(
            input='{"type":"QUIT"}\n{"type":"QUIT"}\n', timeout=60
        )
        assert process.returncode == 0
        frames = [json.loads(line) for line in out.splitlines() if line.strip()]
        assert frames == [{"type": "BYE"}]

    def test_eof_exits_cleanly(self):
        process = subprocess.Popen(
            default_server_command(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=server_environment(),
            text=True,
        )
        out, _ = process.communicate(input="", timeout=60)
        assert process.returncode == 0
        assert out == ""

    def test_restore_bad_steps(self, server):
        wire = shard_task_to_wire(make_task())
        with pytest.raises(SimProtocolError, match="non-negative integer"):
            server.request({"type": "RESTORE", "task": wire, "steps": -1})
        # Fast-forwarding past the end of the workload is refused loudly.
        with pytest.raises(SimProtocolError, match="cannot fast-forward"):
            server.request({"type": "RESTORE", "task": wire, "steps": 10_000})


class TestSnapshotRestore:
    def test_round_trip_byte_identity(self):
        """A session RESTOREd at a snapshot is byte-identical to the original:
        same digest at the snapshot, same digests for every later step, and
        the same final payload."""
        task_wire = shard_task_to_wire(make_task(iterations=4))
        original = SimServerProcess(request_timeout=60.0)
        restored = SimServerProcess(request_timeout=60.0)
        try:
            original.request({"type": "LOAD", "task": task_wire})
            for _ in range(3):
                original.request({"type": "STEP"})
            snapshot = original.request({"type": "SNAPSHOT"})
            assert snapshot["steps"] == 3

            response = restored.request(
                {"type": "RESTORE", "task": task_wire, "steps": snapshot["steps"]}
            )
            assert response["type"] == "RESTORED"
            assert response["steps"] == snapshot["steps"]
            assert response["digest"] == snapshot["digest"]

            # Both sessions now walk the remainder in lockstep.
            while True:
                step_a = original.request({"type": "STEP"})
                step_b = restored.request({"type": "STEP"})
                assert step_a == step_b or (
                    # wall_seconds inside the final payload is timing
                    step_a["done"]
                    and step_b["done"]
                )
                if step_a["done"]:
                    payload_a = dict(step_a["payload"])
                    payload_b = dict(step_b["payload"])
                    payload_a.pop("wall_seconds")
                    payload_b.pop("wall_seconds")
                    # metric latency histograms are timing too
                    payload_a.pop("metrics", None)
                    payload_b.pop("metrics", None)
                    # Timing lives inside the result dict too; compare the
                    # deterministic projection.
                    result_a = payload_a.pop("result")
                    result_b = payload_b.pop("result")
                    for entry in (result_a, result_b):
                        entry["elapsed_seconds"] = 0.0
                        entry["first_bug_seconds"] = None
                        for report in entry["reports"]:
                            report["wall_clock_seconds"] = 0.0
                    assert payload_a == payload_b
                    assert result_a == result_b
                    break
        finally:
            original.quit()
            restored.quit()
