"""Tests for the out-of-process simulator fabric: the fault-tolerant
SubprocessSimulator client (SIGKILL / crash / hang recovery via
restart-and-replay), the per-shard process pool, and campaign byte-identity
between the in-process and subprocess simulators on every backend."""

import json
import os
import signal
import threading
import time
from dataclasses import replace

import pytest

from repro.core import FuzzerConfiguration, ShardTask, run_parallel_campaign
from repro.core.backends import run_shard_task
from repro.core.distributed import DistributedBackend
from repro.core.engine import EngineConfiguration
from repro.core.report import CampaignResult
from repro.core.worker import run_worker
from repro.sim.client import (
    SimProcessPool,
    SimServerCrash,
    SubprocessSimulator,
    close_default_pool,
    default_pool,
    default_server_command,
)
from repro.uarch import small_boom_config

BOOM = small_boom_config()


def make_task(**overrides):
    defaults = dict(
        slice_index=0,
        epoch=0,
        iterations=4,
        configuration=FuzzerConfiguration(core=BOOM, entropy=31, seed_id_base=10),
        simulator="subprocess",
    )
    defaults.update(overrides)
    return ShardTask(**defaults)


def deterministic_payload(payload):
    """The deterministic projection of a shard payload (timing and simulator
    accounting dropped)."""
    result = CampaignResult.from_dict(payload["result"]).to_dict(include_timing=False)
    return {
        "slice_index": payload["slice_index"],
        "epoch": payload["epoch"],
        "core": payload["core"],
        "result": result,
        "points": payload["points"],
        "top_seeds": payload["top_seeds"],
    }


def deterministic_wire(result):
    return json.dumps(result.campaign.to_dict(include_timing=False), sort_keys=True)


@pytest.fixture(scope="module")
def inproc_reference():
    return deterministic_payload(run_shard_task(make_task(simulator="inproc")))


class TestSubprocessSimulator:
    def test_run_task_matches_inproc(self, inproc_reference):
        simulator = SubprocessSimulator()
        try:
            payload = simulator.run_task(make_task())
        finally:
            simulator.close()
        assert deterministic_payload(payload) == inproc_reference
        stats = payload["sim_stats"]
        assert stats["spawns"] == 1
        assert stats["restarts"] == 0
        assert stats["steps"] > 0
        assert stats["step_seconds_total"] > 0

    def test_server_process_is_reused_across_tasks(self, inproc_reference):
        simulator = SubprocessSimulator()
        try:
            first = simulator.run_task(make_task())
            pid = simulator.pid
            second = simulator.run_task(make_task())
            assert simulator.pid == pid
        finally:
            simulator.close()
        assert first["sim_stats"]["spawns"] == 1
        assert second["sim_stats"]["spawns"] == 0  # reused, not respawned
        assert deterministic_payload(first) == deterministic_payload(second)

    def test_sigkill_mid_task_restarts_and_replays(self, inproc_reference):
        simulator = SubprocessSimulator(snapshot_interval=2)
        try:
            simulator.begin_task(make_task())
            for _ in range(3):
                assert simulator.advance() is not None
            os.kill(simulator.pid, signal.SIGKILL)
            while simulator.advance() is not None:
                pass
            payload = simulator.finish_task()
        finally:
            simulator.close()
        assert deterministic_payload(payload) == inproc_reference
        assert payload["sim_stats"]["restarts"] >= 1
        assert payload["sim_stats"]["spawns"] >= 2

    def test_crashing_server_restarts_and_replays(self, inproc_reference):
        def factory(spawn_index):
            command = default_server_command()
            if spawn_index == 0:
                return command + ["--crash-after", "2"]
            return command

        simulator = SubprocessSimulator(command_factory=factory, snapshot_interval=2)
        try:
            payload = simulator.run_task(make_task())
        finally:
            simulator.close()
        assert deterministic_payload(payload) == inproc_reference
        assert payload["sim_stats"]["restarts"] == 1

    def test_hung_server_is_killed_and_replayed(self, inproc_reference):
        def factory(spawn_index):
            command = default_server_command()
            if spawn_index == 0:
                return command + ["--hang-after", "1"]
            return command

        simulator = SubprocessSimulator(
            command_factory=factory, snapshot_interval=2, request_timeout=3.0
        )
        try:
            payload = simulator.run_task(make_task())
        finally:
            simulator.close()
        assert deterministic_payload(payload) == inproc_reference
        assert payload["sim_stats"]["restarts"] == 1

    def test_restart_budget_exhaustion_raises(self):
        def factory(spawn_index):
            return default_server_command() + ["--crash-after", "0"]

        simulator = SubprocessSimulator(command_factory=factory, max_restarts=2)
        try:
            with pytest.raises(SimServerCrash, match="giving up"):
                simulator.run_task(make_task())
        finally:
            simulator.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="snapshot_interval"):
            SubprocessSimulator(snapshot_interval=0)
        with pytest.raises(ValueError, match="max_restarts"):
            SubprocessSimulator(max_restarts=-1)
        with pytest.raises(ValueError, match="request_timeout"):
            SubprocessSimulator(request_timeout=0).run_task(make_task())


class TestSimProcessPool:
    def test_pool_spawns_one_server_per_slot_and_reuses_it(self):
        pool = SimProcessPool()
        try:
            first = pool.run_task(make_task(slice_index=0))
            second = pool.run_task(make_task(slice_index=1, epoch=0))
            again = pool.run_task(make_task(slice_index=0, epoch=1))
            rows = pool.processes()
        finally:
            pool.close()
        assert [row["slot"] for row in rows] == [0, 1]
        assert all(row["spawns"] == 1 for row in rows)
        assert first["sim_stats"]["spawns"] == 1
        assert second["sim_stats"]["spawns"] == 1
        assert again["sim_stats"]["spawns"] == 0
        assert len({row["pid"] for row in rows}) == 2

    def test_pool_caps_live_servers_with_lru_eviction(self):
        pool = SimProcessPool(max_live_servers=2)
        try:
            pool.run_task(make_task(slice_index=0))
            pool.run_task(make_task(slice_index=1))
            pool.run_task(make_task(slice_index=2))
            rows = {row["slot"]: row for row in pool.processes()}
            # Slot 0 was the least recently used idle server: evicted.
            assert not rows[0]["alive"]
            assert rows[1]["alive"] and rows[2]["alive"]
            # An evicted slot keeps its entry and respawns on next use.
            payload = pool.run_task(make_task(slice_index=0, epoch=1))
            rows = {row["slot"]: row for row in pool.processes()}
            assert rows[0]["alive"] and rows[0]["spawns"] == 2
            assert sum(1 for row in rows.values() if row["alive"]) <= 2
            assert payload["sim_stats"]["spawns"] == 1
        finally:
            pool.close()

    def test_pool_validation(self):
        with pytest.raises(ValueError, match="max_live_servers"):
            SimProcessPool(max_live_servers=0)

    def test_close_quits_the_servers(self):
        pool = SimProcessPool()
        pool.run_task(make_task())
        pids = [row["pid"] for row in pool.processes()]
        pool.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if all(not _pid_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert all(not _pid_alive(pid) for pid in pids)
        assert pool.processes() == []

    def test_run_shard_task_dispatches_to_the_default_pool(self, inproc_reference):
        close_default_pool()
        payload = run_shard_task(make_task())
        assert deterministic_payload(payload) == inproc_reference
        assert [row["slot"] for row in default_pool().processes()] == [0]
        close_default_pool()


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


class TestEngineIntegration:
    SHARDS = 2
    ITERATIONS = 8
    EPOCHS = 2
    ENTROPY = 77

    def run_campaign(self, executor, simulator, **overrides):
        return run_parallel_campaign(
            BOOM,
            shards=self.SHARDS,
            iterations=self.ITERATIONS,
            sync_epochs=self.EPOCHS,
            entropy=self.ENTROPY,
            executor=executor,
            simulator=simulator,
            **overrides,
        )

    def test_every_backend_matches_inproc(self):
        reference = self.run_campaign("inline", "inproc")
        wire = deterministic_wire(reference)
        for executor, overrides in (
            ("inline", {}),
            ("async", {"async_concurrency": 2}),
            ("process", {}),
        ):
            campaign = self.run_campaign(executor, "subprocess", **overrides)
            assert deterministic_wire(campaign) == wire, executor
            # One accounting row per executed slice-epoch task, all crash-free.
            assert len(campaign.sim_log) == len(campaign.slice_summaries)
            assert all(row["restarts"] == 0 for row in campaign.sim_log)
            assert campaign.summary()["simulator_processes"]["restarts"] == 0
        close_default_pool()

    def test_sigkilled_server_mid_campaign_is_byte_identical(self):
        reference = self.run_campaign("inline", "inproc")
        close_default_pool()  # fresh servers so the kill drill sees our pids

        killed = threading.Event()

        def assassin():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not killed.is_set():
                rows = default_pool().processes()
                for row in rows:
                    if row["alive"]:
                        os.kill(row["pid"], signal.SIGKILL)
                        killed.set()
                        return
                time.sleep(0.01)

        thread = threading.Thread(target=assassin, daemon=True)
        thread.start()
        campaign = self.run_campaign("inline", "subprocess")
        thread.join(timeout=60)
        assert killed.is_set(), "the kill drill never saw a live server"
        assert deterministic_wire(campaign) == deterministic_wire(reference)
        # The kill almost always lands mid-task (restart-and-replay, counted
        # as a restart); in the unlikely window between tasks the recovery is
        # a plain respawn — either way an extra server process was started.
        assert (
            sum(row["restarts"] for row in campaign.sim_log) >= 1
            or sum(row["spawns"] for row in campaign.sim_log) > self.SHARDS
        )
        close_default_pool()

    def test_distributed_worker_runs_subprocess_simulator(self):
        reference = self.run_campaign("inline", "inproc")
        backend = DistributedBackend(listen="127.0.0.1:0", min_workers=1)
        try:
            thread = threading.Thread(
                target=run_worker,
                kwargs=dict(
                    connect=f"{backend.address[0]}:{backend.address[1]}",
                    capacity=2,
                    quiet=True,
                ),
                daemon=True,
            )
            thread.start()
            campaign = self.run_campaign("inline", "subprocess", backend=backend)
        finally:
            backend.close()
        assert deterministic_wire(campaign) == deterministic_wire(reference)
        # The worker ran the tasks, so sim accounting still reached the merge.
        assert len(campaign.sim_log) == len(campaign.slice_summaries)
        close_default_pool()

    def test_configuration_rejects_unknown_simulator(self):
        with pytest.raises(ValueError, match="unknown simulator"):
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM), simulator="verilator"
            )
