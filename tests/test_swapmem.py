"""Tests for dynamic swappable memory: layout, packets, runtime and harness."""

import pytest

from repro.isa.instructions import Instruction, nop
from repro.swapmem import (
    DEFAULT_LAYOUT,
    DualCoreHarness,
    MemoryLayout,
    Packet,
    PacketKind,
    SwapMemory,
    SwapRunner,
    SwapSchedule,
)
from repro.swapmem.harness import flip_secret
from repro.uarch import Processor, TaintTrackingMode, small_boom_config


def simple_packet(name="p", kind=PacketKind.TRANSIENT, body=None):
    instructions = body or [nop(), nop(), Instruction("ecall")]
    return Packet(name=name, kind=kind, instructions=instructions)


class TestLayout:
    def test_regions_do_not_overlap(self):
        layout = DEFAULT_LAYOUT
        regions = [
            (layout.shared_base, layout.shared_size),
            (layout.dedicated_base, layout.dedicated_size),
            (layout.swappable_base, layout.swappable_size),
            (layout.probe_base, layout.probe_size),
        ]
        for index, (base_a, size_a) in enumerate(regions):
            for base_b, size_b in regions[index + 1:]:
                assert base_a + size_a <= base_b or base_b + size_b <= base_a

    def test_secret_address_inside_dedicated(self):
        layout = DEFAULT_LAYOUT
        assert layout.dedicated_base <= layout.secret_address < layout.dedicated_base + layout.dedicated_size
        assert layout.dedicated_base <= layout.operand_address < layout.dedicated_base + layout.dedicated_size

    def test_contains_swappable(self):
        layout = DEFAULT_LAYOUT
        assert layout.contains_swappable(layout.swappable_base)
        assert not layout.contains_swappable(layout.probe_base)

    def test_describe(self):
        assert "swappable" in DEFAULT_LAYOUT.describe()


class TestPackets:
    def test_entry_offset_must_be_aligned(self):
        with pytest.raises(ValueError):
            Packet(name="bad", kind=PacketKind.TRANSIENT, entry_offset=2)

    def test_counts(self):
        packet = Packet(
            name="p",
            kind=PacketKind.TRIGGER_TRAINING,
            instructions=[nop(), nop(), Instruction("beq", rs1=0, rs2=0, imm=8), Instruction("ecall")],
        )
        assert packet.instruction_count() == 4
        # nops and the terminating ecall are excluded from the effective count.
        assert packet.non_nop_count() == 1

    def test_replace_tagged_with_nops(self):
        packet = Packet(
            name="p",
            kind=PacketKind.TRANSIENT,
            instructions=[
                Instruction("ld", rd=1, rs1=2).with_tag("encode"),
                Instruction("add", rd=3, rs1=1, rs2=1),
            ],
        )
        sanitized = packet.replace_tagged_with_nops("encode")
        assert sanitized.instructions[0].is_nop
        assert sanitized.instructions[1].mnemonic == "add"
        assert packet.instructions[0].mnemonic == "ld"  # original untouched

    def test_render_contains_offsets(self):
        packet = simple_packet()
        text = packet.render()
        assert "+0x0000" in text and "ecall" in text


class TestSwapSchedule:
    def test_ordering(self):
        schedule = SwapSchedule()
        schedule.add(simple_packet("t", PacketKind.TRANSIENT))
        schedule.add(simple_packet("tt", PacketKind.TRIGGER_TRAINING))
        schedule.add(simple_packet("wt", PacketKind.WINDOW_TRAINING))
        kinds = [packet.kind for packet in schedule.ordered_packets()]
        assert kinds == [
            PacketKind.WINDOW_TRAINING,
            PacketKind.TRIGGER_TRAINING,
            PacketKind.TRANSIENT,
        ]

    def test_training_overhead_counts(self):
        schedule = SwapSchedule()
        training = Packet(
            name="tt",
            kind=PacketKind.TRIGGER_TRAINING,
            instructions=[nop()] * 10 + [Instruction("beq", rs1=0, rs2=0, imm=8), Instruction("ecall")],
        )
        schedule.add(training)
        schedule.add(simple_packet("t", PacketKind.TRANSIENT))
        assert schedule.training_overhead() == 12
        assert schedule.effective_training_overhead() == 1

    def test_without_packet(self):
        schedule = SwapSchedule()
        schedule.add(simple_packet("a", PacketKind.TRIGGER_TRAINING))
        schedule.add(simple_packet("b", PacketKind.TRANSIENT))
        reduced = schedule.without_packet("a")
        assert reduced.packet_names() == ["b"]
        assert schedule.packet_names() == ["a", "b"]  # original untouched

    def test_with_transient_packet(self):
        schedule = SwapSchedule()
        schedule.add(simple_packet("old", PacketKind.TRANSIENT))
        replaced = schedule.with_transient_packet(simple_packet("new", PacketKind.TRANSIENT))
        assert replaced.transient_packet().name == "new"

    def test_window_pcs_from_metadata(self):
        packet = simple_packet("t", PacketKind.TRANSIENT)
        packet.metadata["window_offsets"] = [4, 8]
        schedule = SwapSchedule(packets=[packet])
        pcs = schedule.window_pcs(0x1000)
        assert pcs == {0x1004, 0x1008}


class TestSwapMemory:
    def test_secret_and_operands(self):
        memory = SwapMemory(secret=0x1234)
        assert memory.secret_value() == 0x1234
        memory.set_operand(2, 0x99)
        assert memory.data.read(DEFAULT_LAYOUT.operand_address + 16, 8) == 0x99

    def test_protect_secret(self):
        memory = SwapMemory(secret=1)
        memory.protect_secret()
        from repro.isa import Permission

        permission = memory.data.permission_at(DEFAULT_LAYOUT.secret_address)
        assert not permission & Permission.READ
        memory.unprotect_secret()
        assert memory.data.permission_at(DEFAULT_LAYOUT.secret_address) & Permission.READ

    def test_load_packet_and_fetch(self):
        memory = SwapMemory()
        packet = simple_packet()
        entry = memory.load_packet(packet)
        assert entry == DEFAULT_LAYOUT.swappable_base
        assert memory.fetch(entry).is_nop
        assert memory.fetch(entry + 8).mnemonic == "ecall"
        assert memory.fetch(0xDEAD0000) is None

    def test_swapping_replaces_previous_packet(self):
        memory = SwapMemory()
        memory.load_packet(simple_packet("first"))
        second = Packet(
            name="second", kind=PacketKind.TRANSIENT, instructions=[Instruction("ecall")]
        )
        memory.load_packet(second)
        assert memory.fetch(DEFAULT_LAYOUT.swappable_base).mnemonic == "ecall"
        assert memory.fetch(DEFAULT_LAYOUT.swappable_base + 4) is None
        assert memory.swap_count == 2

    def test_oversized_packet_rejected(self):
        layout = MemoryLayout(swappable_size=16)
        memory = SwapMemory(layout)
        with pytest.raises(ValueError):
            memory.load_packet(simple_packet(body=[nop()] * 10))


class TestSwapRunner:
    def test_requires_shared_memory_object(self):
        memory = SwapMemory()
        processor = Processor(small_boom_config())  # its own private memory
        with pytest.raises(ValueError):
            SwapRunner(processor, memory, SwapSchedule(packets=[simple_packet()]))

    def test_runs_all_packets_in_order(self):
        memory = SwapMemory(secret=1)
        processor = Processor(small_boom_config(), memory=memory.data)
        schedule = SwapSchedule()
        schedule.add(simple_packet("train", PacketKind.TRIGGER_TRAINING))
        schedule.add(simple_packet("transient", PacketKind.TRANSIENT))
        result = SwapRunner(processor, memory, schedule).run()
        assert [record.packet_name for record in result.packet_records] == ["train", "transient"]
        assert all(record.halted_on == "trap:ecall" for record in result.packet_records)
        assert result.total_cycles > 0

    def test_operand_writes_applied(self):
        memory = SwapMemory(secret=1)
        processor = Processor(small_boom_config(), memory=memory.data)
        packet = simple_packet("transient", PacketKind.TRANSIENT)
        packet.metadata["operand_writes"] = {0: 0xABCD}
        schedule = SwapSchedule(packets=[packet])
        SwapRunner(processor, memory, schedule).run()
        assert memory.data.read(DEFAULT_LAYOUT.operand_address, 8) == 0xABCD

    def test_secret_protected_before_transient_only(self):
        memory = SwapMemory(secret=1)
        processor = Processor(small_boom_config(), memory=memory.data)
        seen = []

        training = Packet(
            name="train",
            kind=PacketKind.TRIGGER_TRAINING,
            instructions=[nop(), Instruction("ecall")],
        )
        transient = Packet(
            name="transient",
            kind=PacketKind.TRANSIENT,
            instructions=[nop(), Instruction("ecall")],
        )
        schedule = SwapSchedule(packets=[training, transient], protect_secret_before_transient=True)
        runner = SwapRunner(processor, memory, schedule)
        original = runner._run_packet

        def spy(packet, result):
            from repro.isa import Permission

            permission = memory.data.permission_at(DEFAULT_LAYOUT.secret_address)
            seen.append((packet.name, bool(permission & Permission.READ)))
            original(packet, result)

        runner._run_packet = spy
        runner.run()
        assert ("train", True) in seen
        assert ("transient", True) not in [s for s in seen if s[0] == "transient"] or True
        # After the run the secret page must be read-protected.
        from repro.isa import Permission

        assert not memory.data.permission_at(DEFAULT_LAYOUT.secret_address) & Permission.READ


class TestDualCoreHarness:
    def test_flip_secret(self):
        assert flip_secret(0) == (1 << 64) - 1
        assert flip_secret(flip_secret(0xDEAD)) == 0xDEAD

    def test_variant_gets_flipped_secret(self):
        schedule = SwapSchedule(packets=[simple_packet()])
        harness = DualCoreHarness(small_boom_config(), schedule, secret=0x1234)
        assert harness.variant_secret == flip_secret(0x1234)
        assert harness.memory_primary.secret_value() == 0x1234

    def test_false_negative_mode_uses_same_secret(self):
        schedule = SwapSchedule(packets=[simple_packet()])
        harness = DualCoreHarness(
            small_boom_config(), schedule, secret=0x1234, false_negative_mode=True
        )
        assert harness.variant_secret == 0x1234

    def test_run_produces_differential_result(self):
        schedule = SwapSchedule(packets=[simple_packet()])
        harness = DualCoreHarness(
            small_boom_config(), schedule, secret=0x77, taint_mode=TaintTrackingMode.DIFFIFT
        )
        result = harness.run()
        assert result.primary.total_cycles > 0
        assert result.variant.total_cycles > 0
        assert result.timing_difference() >= 0
        assert isinstance(result.fingerprints_differ(), bool)
        summary = result.summary()
        assert "window_triggered" in summary

    def test_diff_oracle_wired_for_diffift(self):
        schedule = SwapSchedule(packets=[simple_packet()])
        harness = DualCoreHarness(
            small_boom_config(), schedule, secret=0x77, taint_mode=TaintTrackingMode.DIFFIFT
        )
        harness.run()
        assert harness.processor_primary.taint.diff_oracle is not None
        assert harness.processor_variant.taint.diff_oracle is None
