"""Tests for the live campaign telemetry pipeline.

The shared contract under test: telemetry is *pure observation* — the same
campaign run with telemetry on, off, or with a failing sink produces
byte-identical deterministic wire forms on every execution path — and the
metric primitives merge deterministically in any join order, because
worker payloads arrive in whatever order the fleet finishes them.
"""

import json
import subprocess
import sys
import threading

import pytest

from repro.analysis import latency_percentiles, telemetry_table
from repro.analysis.watch import TelemetryFollower, validate_record
from repro.analysis.watch import main as watch_main
from repro.core.backends import ShardTask, run_shard_task
from repro.core.distributed import (
    DistributedBackend,
    shard_task_from_wire,
    shard_task_to_wire,
)
from repro.core.engine import (
    EngineConfiguration,
    EngineResult,
    ParallelCampaignEngine,
    run_parallel_campaign,
)
from repro.core.fuzzer import FuzzerConfiguration
from repro.core.report import CampaignResult
from repro.core.worker import run_worker
from repro.sim.client import close_default_pool
from repro.telemetry import (
    HISTOGRAM_BOUNDS,
    CampaignTelemetry,
    LatencyHistogram,
    MetricsRegistry,
    NULL_REGISTRY,
    TelemetryRing,
    TelemetrySink,
    diff_snapshots,
)
from repro.uarch import small_boom_config

BOOM = small_boom_config()


def engine_wire(result):
    return json.dumps(result.campaign.to_dict(include_timing=False), sort_keys=True)


# -- metric primitives -----------------------------------------------------------------------


class TestLatencyHistogram:
    def test_records_land_in_log_scale_buckets(self):
        histogram = LatencyHistogram()
        histogram.record(0.001)
        histogram.record(0.5)
        histogram.record(10_000.0)  # beyond the last bound -> overflow bucket
        assert histogram.count == 3
        assert sum(histogram.counts) == 3
        assert histogram.counts[-1] == 1  # the overflow

    def test_merge_is_order_independent(self):
        # Three shards' histograms joined in every order produce identical
        # wire forms — the property the epoch merge relies on when worker
        # payloads arrive in completion order.
        samples = [
            [0.0001, 0.004, 0.03],
            [0.5, 0.0002],
            [2.5, 0.00001, 7.0, 0.9],
        ]
        shards = []
        for values in samples:
            histogram = LatencyHistogram()
            for value in values:
                histogram.record(value)
            shards.append(histogram)
        import itertools

        wires = set()
        for order in itertools.permutations(range(3)):
            merged = LatencyHistogram()
            for index in order:
                merged.merge(shards[index])
            wires.add(json.dumps(merged.to_dict(), sort_keys=True))
        assert len(wires) == 1
        merged = LatencyHistogram.from_dict(json.loads(wires.pop()))
        assert merged.count == sum(len(values) for values in samples)

    def test_wire_round_trip_is_sparse(self):
        histogram = LatencyHistogram()
        histogram.record(0.001)
        payload = histogram.to_dict()
        # Sparse form: only the one non-empty bucket is carried.
        assert len(payload["buckets"]) == 1
        decoded = LatencyHistogram.from_dict(payload)
        assert decoded.counts == histogram.counts
        assert decoded.total_us == histogram.total_us

    def test_merge_dict_tolerates_missing_buckets(self):
        histogram = LatencyHistogram()
        histogram.merge_dict({"count": 2, "total_us": 100, "buckets": [[0, 2]]})
        assert histogram.count == 2
        assert histogram.counts[0] == 2

    def test_percentile_returns_bucket_upper_bound(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.001)
        p50 = histogram.percentile(50)
        assert p50 in HISTOGRAM_BOUNDS
        assert p50 >= 0.001
        assert histogram.percentile(99) == p50  # all mass in one bucket

    def test_mean_uses_integer_microseconds(self):
        histogram = LatencyHistogram()
        histogram.record(0.002)
        histogram.record(0.004)
        assert histogram.mean_seconds() == pytest.approx(0.003, abs=1e-6)


class TestMetricsRegistry:
    def test_scopes_prefix_names(self):
        registry = MetricsRegistry()
        registry.scope("phase1").counter("hits").add(3)
        registry.scope("phase1").scope("cache").counter("misses").add()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {
            "phase1/cache/misses": 1,
            "phase1/hits": 3,
        }

    def test_instruments_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_disabled_registry_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x")
        counter.add(5)
        histogram = registry.histogram("h")
        histogram.record(1.0)
        registry.gauge("g").set(3)
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        # The null instruments are shared singletons, and NULL_REGISTRY is
        # the canonical off switch.
        assert NULL_REGISTRY.counter("anything") is NULL_REGISTRY.counter("else")

    def test_snapshot_merge_in_any_order(self):
        def shard(values):
            registry = MetricsRegistry()
            registry.counter("sims").add(values[0])
            for value in values[1:]:
                registry.histogram("latency").record(value)
            return registry.snapshot()

        snapshots = [shard([3, 0.001]), shard([5, 0.5, 0.004]), shard([2])]
        import itertools

        wires = set()
        for order in itertools.permutations(range(3)):
            merged = MetricsRegistry()
            for index in order:
                merged.merge_snapshot(snapshots[index])
            wires.add(json.dumps(merged.snapshot(), sort_keys=True))
        assert len(wires) == 1
        final = json.loads(wires.pop())
        assert final["counters"]["sims"] == 10

    def test_diff_snapshots_attributes_a_run(self):
        registry = MetricsRegistry()
        registry.counter("tasks").add(4)
        registry.histogram("rt").record(0.1)
        before = registry.snapshot()
        registry.counter("tasks").add(3)
        registry.histogram("rt").record(0.2)
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["counters"] == {"tasks": 3}
        assert sum(count for _, count in delta["histograms"]["rt"]["buckets"]) == 1


# -- sinks -----------------------------------------------------------------------------------


class TestTelemetrySink:
    def test_rotation_creates_numbered_files(self, tmp_path):
        sink = TelemetrySink(str(tmp_path), max_bytes=120)
        for index in range(12):
            assert sink.emit({"type": "round", "epoch": index, "pad": "x" * 40})
        files = sink.files()
        assert len(files) > 1
        # Every line in every file parses; records are in emit order.
        epochs = []
        for file in files:
            with open(file, encoding="utf-8") as handle:
                for line in handle:
                    epochs.append(json.loads(line)["epoch"])
        assert epochs == list(range(12))

    def test_resumes_past_existing_files(self, tmp_path):
        first = TelemetrySink(str(tmp_path))
        first.emit({"type": "round", "epoch": 0})
        second = TelemetrySink(str(tmp_path))
        second.emit({"type": "round", "epoch": 1})
        assert len(second.files()) == 2  # appended a fresh file, kept history

    def test_sink_failure_is_contained(self, tmp_path, capsys):
        blocker = tmp_path / "not-a-directory"
        blocker.write_text("occupied")
        sink = TelemetrySink(str(blocker))
        assert sink.failed
        assert not sink.emit({"type": "round"})
        assert sink.records_written == 0
        assert "campaign unaffected" in capsys.readouterr().err


class TestCampaignTelemetry:
    def test_ring_and_sink_receive_records(self, tmp_path):
        pipeline = CampaignTelemetry(directory=str(tmp_path))
        assert pipeline.emit({"type": "worker", "epoch": 0, "deliveries": []})
        assert len(pipeline.ring) == 1
        assert pipeline.sink.records_written == 1
        assert "ts" in pipeline.ring.records()[0]

    def test_disabled_pipeline_is_inert(self, tmp_path):
        pipeline = CampaignTelemetry(directory=str(tmp_path), enabled=False)
        assert not pipeline.emit({"type": "round"})
        assert len(pipeline.ring) == 0
        assert pipeline.sink is None  # no directory is even created for it

    def test_cadence_gates_round_records_but_not_the_final(self):
        pipeline = CampaignTelemetry(cadence=3600.0)
        assert pipeline.emit_round({"type": "round", "epoch": 0})
        assert not pipeline.emit_round({"type": "round", "epoch": 1})
        assert not pipeline.emit_round({"type": "round", "epoch": 2})
        assert pipeline.emit_round({"type": "round", "epoch": 3}, final=True)
        records = pipeline.ring.records("round")
        assert [record["epoch"] for record in records] == [0, 3]
        # The gated rounds are accounted for on the record that flowed.
        assert records[-1]["suppressed_rounds"] == 2

    def test_zero_cadence_emits_every_round(self):
        pipeline = CampaignTelemetry()
        for epoch in range(3):
            assert pipeline.emit_round({"type": "round", "epoch": epoch})
        assert len(pipeline.ring.records("round")) == 3

    def test_ring_is_bounded(self):
        ring = TelemetryRing(capacity=4)
        for index in range(10):
            ring.append({"type": "round", "epoch": index})
        assert len(ring) == 4
        assert ring.records()[0]["epoch"] == 6


# -- configuration and wire forms ------------------------------------------------------------


class TestConfiguration:
    def test_rejects_negative_cadence(self):
        with pytest.raises(ValueError, match="telemetry_cadence"):
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=3),
                iterations=4,
                telemetry_cadence=-1.0,
            )

    def test_telemetry_knobs_stay_out_of_the_fingerprint(self, tmp_path):
        def configuration(**telemetry):
            return EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=3),
                iterations=4,
                **telemetry,
            )

        with_telemetry = ParallelCampaignEngine(
            configuration(telemetry_dir=str(tmp_path), telemetry_cadence=5.0)
        )
        without = ParallelCampaignEngine(configuration(telemetry=False))
        assert (
            with_telemetry.configuration_fingerprint()
            == without.configuration_fingerprint()
        )

    def test_shard_task_wire_round_trip(self):
        task = ShardTask(
            slice_index=1,
            epoch=0,
            iterations=4,
            configuration=FuzzerConfiguration(core=BOOM, entropy=5),
            telemetry=False,
            telemetry_cadence=2.5,
        )
        decoded = shard_task_from_wire(shard_task_to_wire(task))
        assert decoded.telemetry is False
        assert decoded.telemetry_cadence == 2.5

    def test_missing_wire_keys_default_to_on(self):
        # Tasks from a pre-telemetry coordinator keep working on a new
        # worker: telemetry defaults on, cadence to zero.
        wire = shard_task_to_wire(
            ShardTask(
                slice_index=0,
                epoch=0,
                iterations=4,
                configuration=FuzzerConfiguration(core=BOOM, entropy=5),
            )
        )
        del wire["telemetry"]
        del wire["telemetry_cadence"]
        decoded = shard_task_from_wire(wire)
        assert decoded.telemetry is True
        assert decoded.telemetry_cadence == 0.0


class TestSummaryKinds:
    def test_summary_filters_by_kind_with_legacy_fallback(self):
        result = EngineResult(
            campaign=CampaignResult(fuzzer_name="DejaVuzz", core="boom"),
            core_coverage={},
            shards=1,
            epochs=1,
        )
        result.sim_log = [
            # A merged subprocess row: both shapes, kind says process.
            {"kind": "sim_process", "spawns": 2, "restarts": 1, "window_batches": 3},
            # A batch-only row must NOT be counted as a process row.
            {"kind": "window_batch", "window_batches": 5},
            # A row from a pre-kind coordinator: classified by the old sniff.
            {"spawns": 1, "restarts": 0},
        ]
        processes = result.summary()["simulator_processes"]
        assert processes == {"spawns": 3, "restarts": 1}

    def test_batch_only_runs_report_no_process_summary(self):
        result = EngineResult(
            campaign=CampaignResult(fuzzer_name="DejaVuzz", core="boom"),
            core_coverage={},
            shards=1,
            epochs=1,
        )
        result.sim_log = [{"kind": "window_batch", "window_batches": 5}]
        assert "simulator_processes" not in result.summary()


# -- byte-identity across the execution paths ------------------------------------------------


class TestTelemetryIsPureObservation:
    ENGINE_KWARGS = dict(
        shards=2, slices=2, iterations=8, sync_epochs=2, entropy=9
    )

    @pytest.fixture(scope="class")
    def inline_reference(self):
        result = run_parallel_campaign(
            BOOM, executor="inline", telemetry=False, **self.ENGINE_KWARGS
        )
        assert len(result.telemetry) == 0  # off leaves the ring empty
        return engine_wire(result)

    def test_inline_with_telemetry_matches(self, inline_reference):
        result = run_parallel_campaign(
            BOOM, executor="inline", **self.ENGINE_KWARGS
        )
        assert engine_wire(result) == inline_reference
        assert result.telemetry.records("round")
        assert result.telemetry.records("campaign")

    def test_inline_with_sink_matches(self, inline_reference, tmp_path):
        result = run_parallel_campaign(
            BOOM,
            executor="inline",
            telemetry_dir=str(tmp_path / "stream"),
            **self.ENGINE_KWARGS,
        )
        assert engine_wire(result) == inline_reference
        files = list((tmp_path / "stream").glob("telemetry-*.jsonl"))
        assert files

    def test_inline_with_failing_sink_matches(self, inline_reference, tmp_path, capsys):
        blocker = tmp_path / "blocked"
        blocker.write_text("occupied")  # telemetry_dir is an existing *file*
        result = run_parallel_campaign(
            BOOM,
            executor="inline",
            telemetry_dir=str(blocker),
            **self.ENGINE_KWARGS,
        )
        assert engine_wire(result) == inline_reference
        # The ring keeps working even when the sink is dead.
        assert result.telemetry.records("round")

    def test_process_pool_matches(self, inline_reference):
        result = run_parallel_campaign(
            BOOM, executor="process", **self.ENGINE_KWARGS
        )
        assert engine_wire(result) == inline_reference

    def test_async_matches(self, inline_reference):
        result = run_parallel_campaign(
            BOOM, executor="async", **self.ENGINE_KWARGS
        )
        assert engine_wire(result) == inline_reference

    def test_distributed_matches_and_reports_fabric_metrics(self, inline_reference):
        backend = DistributedBackend(listen="127.0.0.1:0")
        try:
            threading.Thread(
                target=run_worker,
                kwargs=dict(
                    connect=f"{backend.address[0]}:{backend.address[1]}", quiet=True
                ),
                daemon=True,
            ).start()
            result = run_parallel_campaign(
                BOOM, executor="inline", backend=backend, **self.ENGINE_KWARGS
            )
        finally:
            backend.close()
        assert engine_wire(result) == inline_reference
        # The run's share of the fabric metrics landed in the final record.
        campaign = result.telemetry.records("campaign")[-1]
        counters = campaign["metrics"]["counters"]
        assert counters.get("distributed/results_received") == 4
        assert "distributed/task_roundtrip_seconds" in campaign["metrics"]["histograms"]
        # And the per-epoch worker records carried the delivery log.
        workers = result.telemetry.records("worker")
        assert sum(len(record["deliveries"]) for record in workers) == 4

    def test_subprocess_simulator_matches_inproc(self):
        def task(simulator, telemetry):
            return ShardTask(
                slice_index=0,
                epoch=0,
                iterations=6,
                configuration=FuzzerConfiguration(
                    core=BOOM, entropy=6, seed_id_base=10
                ),
                simulator=simulator,
                telemetry=telemetry,
            )

        def deterministic_payload(payload):
            result = CampaignResult.from_dict(payload["result"]).to_dict(
                include_timing=False
            )
            return {
                "slice_index": payload["slice_index"],
                "core": payload["core"],
                "result": result,
                "points": payload["points"],
                "top_seeds": payload["top_seeds"],
            }

        reference = run_shard_task(task("inproc", False))
        assert "metrics" not in reference  # telemetry off: no snapshot rides
        try:
            subprocess_payload = run_shard_task(task("subprocess", True))
        finally:
            # Don't leak a warm server into other tests' spawn accounting.
            close_default_pool()
        assert deterministic_payload(subprocess_payload) == deterministic_payload(
            reference
        )
        metrics = subprocess_payload["metrics"]
        assert metrics["counters"]["phase1/batch_simulations"] > 0
        assert "runner/window_batch_seconds" in metrics["histograms"]
        # The subprocess sim_stats row declares its merged shape.
        assert subprocess_payload["sim_stats"]["kind"] == "sim_process"
        assert subprocess_payload["sim_stats"]["request_latency"]["count"] > 0


# -- engine integration ----------------------------------------------------------------------


class TestEngineTelemetry:
    def test_round_records_track_the_merged_state(self):
        result = run_parallel_campaign(
            BOOM,
            executor="inline",
            shards=2,
            slices=2,
            iterations=12,
            sync_epochs=3,
            entropy=9,
        )
        rounds = result.telemetry.records("round")
        assert len(rounds) == 3
        assert [record["epoch"] for record in rounds] == [0, 1, 2]
        final = rounds[-1]
        assert final["coverage_total"] == result.total_coverage()
        assert final["iterations_done"] == result.campaign.iterations_run == 12
        assert final["reports"] == len(result.campaign.reports)
        assert final["rounds_total"] == 3
        assert len(final["slices"]) == 2  # one row per merged slice task
        campaign = result.telemetry.records("campaign")[-1]
        assert campaign["complete"] is True
        assert campaign["coverage_total"] == result.total_coverage()
        # The merged per-task metrics accumulated across all epochs.
        metrics = result.telemetry.records("metrics")[-1]
        assert metrics["counters"]["phase1/batch_simulations"] > 0
        assert metrics["histograms"]["phase1/sim_seconds"]["count"] > 0

    def test_cadence_suppresses_intermediate_rounds(self):
        result = run_parallel_campaign(
            BOOM,
            executor="inline",
            shards=2,
            slices=2,
            iterations=12,
            sync_epochs=3,
            entropy=9,
            telemetry_cadence=3600.0,
        )
        rounds = result.telemetry.records("round")
        # First round flows, middle is gated, final bypasses the gate.
        assert [record["epoch"] for record in rounds] == [0, 2]
        assert rounds[-1]["suppressed_rounds"] == 1

    def test_resume_appends_to_a_fresh_sink_file(self, tmp_path):
        def configuration(checkpoint):
            return EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=6),
                shards=2,
                slices=2,
                iterations=12,
                sync_epochs=3,
                executor="inline",
                checkpoint_path=checkpoint,
                telemetry_dir=str(tmp_path / "stream"),
            )

        checkpoint = str(tmp_path / "state.json")
        uninterrupted = ParallelCampaignEngine(
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=6),
                shards=2,
                slices=2,
                iterations=12,
                sync_epochs=3,
                executor="inline",
            )
        ).run()
        halted = ParallelCampaignEngine(configuration(checkpoint)).run(max_epochs=1)
        assert not halted.complete
        resumed = ParallelCampaignEngine.resume_from(
            checkpoint, configuration(checkpoint)
        ).run()
        assert engine_wire(resumed) == engine_wire(uninterrupted)
        files = sorted((tmp_path / "stream").glob("telemetry-*.jsonl"))
        assert len(files) == 2  # the resume opened its own numbered file
        # The stream's final coverage matches the resumed result.
        follower = TelemetryFollower(str(tmp_path / "stream"))
        follower.poll()
        assert not follower.errors
        summary = telemetry_table(follower.records)
        assert summary["coverage_total"] == resumed.total_coverage()


# -- analysis helpers and the watch CLI ------------------------------------------------------


class TestAnalysisHelpers:
    def test_telemetry_table_summarizes_a_stream(self):
        records = [
            {
                "type": "round",
                "ts": 100.0,
                "epoch": 0,
                "rounds_total": 2,
                "iterations_done": 6,
                "coverage": {"boom": 4},
                "coverage_gain": {"boom": 4},
                "coverage_total": 4,
                "corpus_size": 3,
                "corpus_evictions": 0,
                "redistributed": 0,
                "transferred": 0,
                "reports": 1,
                "stall_gain_estimate": 4.0,
                "redistribute": True,
                "slices": [],
            },
            {
                "type": "round",
                "ts": 102.0,
                "epoch": 1,
                "rounds_total": 2,
                "iterations_done": 12,
                "coverage": {"boom": 7},
                "coverage_gain": {"boom": 3},
                "coverage_total": 7,
                "corpus_size": 5,
                "corpus_evictions": 0,
                "redistributed": 1,
                "transferred": 0,
                "reports": 2,
                "stall_gain_estimate": 3.0,
                "redistribute": True,
                "slices": [],
            },
            {
                "type": "worker",
                "ts": 102.0,
                "epoch": 1,
                "deliveries": [
                    {"worker": "w1", "epoch": 1, "wall_seconds": 0.5},
                    {"worker": "w1", "epoch": 1, "wall_seconds": 0.4},
                ],
            },
        ]
        summary = telemetry_table(records)
        assert summary["rounds"] == 2
        assert summary["coverage_total"] == 7
        assert summary["iterations_per_second"] == 3.0  # 6 iters over 2s
        assert summary["workers"][0]["tasks"] == 2
        assert summary["campaign"] is None

    def test_latency_percentiles_accepts_wire_form(self):
        histogram = LatencyHistogram()
        for _ in range(10):
            histogram.record(0.01)
        stats = latency_percentiles(histogram.to_dict())
        assert stats["count"] == 10
        assert stats["p50_seconds"] >= 0.01
        assert stats == latency_percentiles(histogram)

    def test_validate_record_flags_missing_fields(self):
        assert validate_record({"type": "nonsense"}) is not None
        assert validate_record({"type": "round", "ts": 1.0}) is not None
        assert (
            validate_record(
                {
                    "type": "worker",
                    "ts": 1.0,
                    "epoch": 0,
                    "deliveries": [],
                }
            )
            is None
        )


class TestWatchCli:
    def _stream(self, tmp_path):
        directory = tmp_path / "stream"
        run_parallel_campaign(
            BOOM,
            executor="inline",
            shards=1,
            slices=2,
            iterations=8,
            sync_epochs=2,
            entropy=9,
            telemetry_dir=str(directory),
        )
        return directory

    def test_once_succeeds_on_a_real_stream(self, tmp_path, capsys):
        directory = self._stream(tmp_path)
        out = tmp_path / "summary.json"
        assert watch_main([str(directory), "--once", "--json", str(out)]) == 0
        assert "coverage" in capsys.readouterr().out
        summary = json.loads(out.read_text())
        assert summary["campaign"]["complete"] is True

    def test_once_fails_on_malformed_records(self, tmp_path, capsys):
        directory = self._stream(tmp_path)
        bad = directory / "telemetry-99999.jsonl"
        bad.write_text('{"type": "round", "epoch": 0}\nnot json at all\n')
        assert watch_main([str(directory), "--once"]) == 1
        err = capsys.readouterr().err
        assert "missing field" in err
        assert "unparseable" in err

    def test_once_fails_on_an_empty_directory(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert watch_main([str(empty), "--once"]) == 1
        assert "no telemetry records" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert watch_main(["/definitely/not/there", "--once"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_follower_leaves_partial_lines_for_the_next_poll(self, tmp_path):
        file = tmp_path / "telemetry-00001.jsonl"
        complete = json.dumps(
            {
                "type": "worker",
                "ts": 1.0,
                "epoch": 0,
                "deliveries": [],
            }
        )
        file.write_bytes((complete + "\n").encode() + b'{"type": "worke')
        follower = TelemetryFollower(str(tmp_path))
        assert len(follower.poll()) == 1  # the torn tail is not consumed
        with open(file, "ab") as handle:
            handle.write(b'r", "ts": 2.0, "epoch": 1, "deliveries": []}\n')
        assert len(follower.poll()) == 1  # ... and completes next poll
        assert not follower.errors

    def test_cli_module_entry_point(self, tmp_path):
        directory = self._stream(tmp_path)
        process = subprocess.run(
            [sys.executable, "-m", "repro.analysis.watch", str(directory), "--once"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
        )
        assert process.returncode == 0, process.stderr
        assert "campaign telemetry" in process.stdout
