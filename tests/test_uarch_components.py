"""Tests for the individual microarchitectural components."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import Instruction
from repro.uarch.boom import small_boom_config
from repro.uarch.bugs import BUG_REGISTRY, bugs_for_core, default_bug_set
from repro.uarch.cache import LineFillBuffer, MemoryHierarchy, SetAssociativeCache
from repro.uarch.config import CacheConfig, CoreConfig
from repro.uarch.execute import ExecutionPorts, base_latency, is_divider_op
from repro.uarch.lsu import LoadStoreUnit
from repro.uarch.predictors import (
    BranchHistoryTable,
    BranchPredictorUnit,
    BranchTargetBuffer,
    LoopPredictor,
    ReturnAddressStack,
)
from repro.uarch.rob import ReorderBuffer, RobEntry
from repro.uarch.tlb import Tlb
from repro.uarch.xiangshan import xiangshan_minimal_config


class TestBranchHistoryTable:
    def test_default_prediction_is_not_taken(self):
        bht = BranchHistoryTable(entries=16)
        assert bht.predict(0x1000).taken is False

    def test_training_flips_prediction(self):
        bht = BranchHistoryTable(entries=16)
        bht.train(0x1000, taken=True)
        assert bht.predict(0x1000).taken is True
        bht.train(0x1000, taken=False)
        bht.train(0x1000, taken=False)
        assert bht.predict(0x1000).taken is False

    def test_counters_saturate(self):
        bht = BranchHistoryTable(entries=4, counter_bits=2)
        for _ in range(10):
            bht.train(0x0, taken=True)
        assert bht.counters[bht._index(0x0)] == 3

    def test_aliasing_by_index(self):
        bht = BranchHistoryTable(entries=4)
        bht.train(0x0, taken=True)
        # 0x10 >> 2 = 4 which aliases with index 0 in a 4-entry table.
        assert bht.predict(0x10).taken is True

    def test_taint_tracking(self):
        bht = BranchHistoryTable(entries=16)
        bht.train(0x4, taken=True, tainted=True)
        assert bht.tainted_entry_count() == 1
        bht.reset()
        assert bht.tainted_entry_count() == 0


class TestBranchTargetBuffer:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=8)
        assert btb.predict(0x2000).hit is False
        btb.install(0x2000, 0x3000)
        prediction = btb.predict(0x2000)
        assert prediction.hit and prediction.target == 0x3000

    def test_tag_mismatch_is_miss(self):
        btb = BranchTargetBuffer(entries=8)
        btb.install(0x2000, 0x3000)
        aliased = 0x2000 + 8 * 4  # same index, different tag
        assert btb.predict(aliased).hit is False

    def test_install_untainted_clears_taint(self):
        btb = BranchTargetBuffer(entries=8)
        btb.install(0x2000, 0x3000, tainted=True)
        assert btb.tainted_entry_count() == 1
        btb.install(0x2000, 0x4000, tainted=False)
        assert btb.tainted_entry_count() == 0

    def test_invalidate(self):
        btb = BranchTargetBuffer(entries=8)
        btb.install(0x2000, 0x3000)
        btb.invalidate(0x2000)
        assert btb.entry_for(0x2000) is None


class TestReturnAddressStack:
    def test_push_pop(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_snapshot_restore_full(self):
        ras = ReturnAddressStack(entries=4, restore_below_tos=True)
        ras.push(0x100)
        snapshot = ras.snapshot()
        ras.push(0xBAD)
        ras.push(0xBAD2)
        ras.restore(snapshot)
        assert ras.peek() == 0x100
        assert 0xBAD not in ras.stack

    def test_phantom_rsb_bug_leaves_entries_below_tos(self):
        """B2: the buggy recovery restores only the top entry and the pointer."""
        ras = ReturnAddressStack(entries=4, restore_below_tos=False)
        ras.push(0x100)
        ras.push(0x200)
        ras.pop()
        ras.pop()
        snapshot = ras.snapshot()
        # Transient calls overwrite entries below the (restored) TOS.
        ras.push(0xDEAD)
        ras.push(0xBEEF)
        ras.restore(snapshot)
        assert ras.top_of_stack == snapshot.top_of_stack
        assert 0xDEAD in ras.stack or 0xBEEF in ras.stack  # corruption survives

    def test_fixed_ras_restores_everything(self):
        ras = ReturnAddressStack(entries=4, restore_below_tos=True)
        ras.push(0x100)
        ras.push(0x200)
        ras.pop()
        ras.pop()
        snapshot = ras.snapshot()
        ras.push(0xDEAD)
        ras.push(0xBEEF)
        ras.restore(snapshot)
        assert 0xDEAD not in ras.stack and 0xBEEF not in ras.stack


class TestLoopPredictor:
    def test_learns_trip_count(self):
        loop = LoopPredictor(entries=8, confidence_threshold=2)
        pc = 0x40
        for _ in range(3):  # three identical loop executions of 4 iterations
            for _ in range(3):
                loop.train(pc, taken=True)
            loop.train(pc, taken=False)
        assert loop.predict(pc) is not None

    def test_not_confident_returns_none(self):
        loop = LoopPredictor(entries=8)
        loop.train(0x40, taken=True)
        assert loop.predict(0x40) is None


class TestCaches:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache("d", CacheConfig(sets=4, ways=2, line_bytes=64))
        miss = cache.access(0x1000)
        assert miss.hit is False
        hit = cache.access(0x1000)
        assert hit.hit is True and hit.latency < miss.latency

    def test_lru_eviction(self):
        cache = SetAssociativeCache("d", CacheConfig(sets=1, ways=2, line_bytes=64))
        cache.access(0x0)
        cache.access(0x40)
        cache.access(0x0)      # touch line 0: line 1 becomes LRU
        cache.access(0x80)     # evicts line at 0x40
        assert cache.lookup(0x0)
        assert not cache.lookup(0x40)

    def test_tainted_lines_tracked_and_evicted(self):
        cache = SetAssociativeCache("d", CacheConfig(sets=1, ways=1, line_bytes=64))
        cache.access(0x0, tainted=True)
        assert cache.tainted_entry_count() == 1
        cache.access(0x40)  # evicts the tainted line
        assert cache.tainted_entry_count() == 0

    def test_flush(self):
        cache = SetAssociativeCache("d", CacheConfig())
        cache.access(0x1234, tainted=True)
        cache.flush()
        assert not cache.resident_lines()
        assert cache.tainted_entry_count() == 0

    def test_miss_rate(self):
        cache = SetAssociativeCache("d", CacheConfig())
        cache.access(0x0)
        cache.access(0x0)
        assert cache.miss_rate == pytest.approx(0.5)

    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=60))
    def test_occupancy_never_exceeds_capacity(self, addresses):
        config = CacheConfig(sets=4, ways=2, line_bytes=64)
        cache = SetAssociativeCache("d", config)
        for address in addresses:
            cache.access(address)
        for ways in cache.sets:
            assert len(ways) <= config.ways

    def test_hierarchy_data_access_allocates_lfb(self):
        hierarchy = MemoryHierarchy.from_config(small_boom_config())
        result = hierarchy.data_access(0x9000, tainted=True)
        assert result.hit is False
        assert hierarchy.lfb.tainted_entry_count() >= 1

    def test_hierarchy_flushes(self):
        hierarchy = MemoryHierarchy.from_config(small_boom_config())
        hierarchy.instruction_access(0x4000)
        hierarchy.data_access(0x8000)
        hierarchy.flush_icache()
        hierarchy.flush_dcache()
        assert not hierarchy.icache.resident_lines()
        assert not hierarchy.dcache.resident_lines()


class TestLineFillBuffer:
    def test_allocation_and_completion(self):
        lfb = LineFillBuffer(entries=2)
        slot = lfb.allocate(0x10, cycle=1, tainted=True)
        assert slot is not None
        assert lfb.live_tainted_slots() == [slot]
        lfb.complete(slot)
        # After completion the data is stale: reachable but not live.
        assert lfb.tainted_slots() == [slot]
        assert lfb.live_tainted_slots() == []

    def test_full_allocation_reuses_invalid_slots(self):
        lfb = LineFillBuffer(entries=1)
        first = lfb.allocate(0x10, cycle=1)
        assert lfb.allocate(0x20, cycle=2) is None  # still valid: no room
        lfb.complete(first)
        assert lfb.allocate(0x20, cycle=3) == first  # invalid slot reused

    def test_valid_mask(self):
        lfb = LineFillBuffer(entries=4)
        lfb.allocate(0x1, cycle=0)
        lfb.allocate(0x2, cycle=0)
        assert lfb.valid_mask() == 0b0011


class TestTlb:
    def test_hit_miss_and_eviction(self):
        tlb = Tlb(entries=2)
        assert tlb.access(0x1000).hit is False
        assert tlb.access(0x1000).hit is True
        tlb.access(0x2000)
        tlb.access(0x3000)  # evicts page 1 (LRU)
        assert not tlb.lookup(0x1000)

    def test_tainted_pages(self):
        tlb = Tlb(entries=4)
        tlb.access(0x5000, tainted=True)
        assert tlb.tainted_entry_count() == 1
        tlb.flush()
        assert tlb.tainted_entry_count() == 0


class TestLoadStoreUnit:
    def test_store_forwarding(self):
        lsu = LoadStoreUnit(8, 8)
        lsu.allocate_store(sequence=1)
        lsu.resolve_store(1, address=0x100, nbytes=8, value=0xAB, tainted=True)
        forwarded = lsu.forward_for_load(sequence=5, address=0x100, nbytes=8)
        assert forwarded is not None and forwarded.value == 0xAB and forwarded.tainted

    def test_forwarding_only_from_older_stores(self):
        lsu = LoadStoreUnit(8, 8)
        lsu.allocate_store(sequence=10)
        lsu.resolve_store(10, address=0x100, nbytes=8, value=1, tainted=False)
        assert lsu.forward_for_load(sequence=5, address=0x100, nbytes=8) is None

    def test_ordering_violation_detection(self):
        lsu = LoadStoreUnit(8, 8)
        lsu.allocate_store(sequence=1)
        lsu.record_load(sequence=2, address=0x200, nbytes=8, cycle=5)
        violation = lsu.check_ordering_violation(store_sequence=1, address=0x200, nbytes=8)
        assert violation is not None and violation.sequence == 2

    def test_no_violation_when_load_forwarded_from_store(self):
        lsu = LoadStoreUnit(8, 8)
        lsu.allocate_store(sequence=1)
        lsu.record_load(sequence=2, address=0x200, nbytes=8, cycle=5, forwarded_from_store=1)
        assert lsu.check_ordering_violation(1, 0x200, 8) is None

    def test_unresolved_older_store_detection(self):
        lsu = LoadStoreUnit(8, 8)
        lsu.allocate_store(sequence=1)
        assert lsu.has_unresolved_older_store(sequence=3)
        lsu.resolve_store(1, 0x0, 8, 0, False)
        assert not lsu.has_unresolved_older_store(sequence=3)

    def test_squash_younger(self):
        lsu = LoadStoreUnit(8, 8)
        lsu.record_load(1, 0x0, 8, cycle=0)
        lsu.record_load(5, 0x8, 8, cycle=1)
        lsu.squash_younger_than(2)
        assert [entry.sequence for entry in lsu.load_queue] == [1]

    def test_shared_writeback_port_serializes(self):
        lsu = LoadStoreUnit(8, 8, writeback_port_shared=True)
        first = lsu.schedule_writeback(10)
        second = lsu.schedule_writeback(10)
        assert first == 10 and second == 11
        assert lsu.port_contention_cycles == 1

    def test_unshared_port_never_delays(self):
        lsu = LoadStoreUnit(8, 8, writeback_port_shared=False)
        assert lsu.schedule_writeback(10) == 10
        assert lsu.schedule_writeback(10) == 10


class TestReorderBuffer:
    def _entry(self, rob, pc=0x100):
        return RobEntry(
            sequence=rob.allocate_sequence(),
            pc=pc,
            instruction=Instruction("addi", rd=1, rs1=0, imm=1),
            fetch_cycle=0,
            predicted_next_pc=pc + 4,
        )

    def test_enqueue_and_capacity(self):
        rob = ReorderBuffer(capacity=2)
        rob.enqueue(self._entry(rob))
        rob.enqueue(self._entry(rob))
        assert rob.is_full
        with pytest.raises(RuntimeError):
            rob.enqueue(self._entry(rob))

    def test_squash_younger(self):
        rob = ReorderBuffer(capacity=8)
        entries = [rob.enqueue(self._entry(rob)) for _ in range(4)]
        squashed = rob.remove_younger_than(entries[1].sequence)
        assert [entry.sequence for entry in squashed] == [entries[2].sequence, entries[3].sequence]
        assert all(entry.squashed for entry in squashed)
        assert len(rob) == 2

    def test_taint_tracking_follows_squash(self):
        rob = ReorderBuffer(capacity=8)
        entries = [rob.enqueue(self._entry(rob)) for _ in range(3)]
        rob.mark_tainted(entries[2].sequence)
        assert rob.tainted_entry_count() == 1
        rob.remove_younger_than(entries[0].sequence)
        assert rob.tainted_entry_count() == 0

    def test_exception_commit_clock_starts_at_head(self):
        rob = ReorderBuffer(capacity=4)
        entry = self._entry(rob)
        entry.executed = True
        entry.complete_cycle = 10
        entry.exception = __import__("repro.isa.simulator", fromlist=["TrapCause"]).TrapCause.ECALL
        assert not entry.is_ready_to_commit(100, exception_commit_delay=5)
        entry.head_arrival_cycle = 100
        assert not entry.is_ready_to_commit(104, exception_commit_delay=5)
        assert entry.is_ready_to_commit(105, exception_commit_delay=5)


class TestExecutionPortsAndLatency:
    def test_port_contention(self):
        config = small_boom_config()
        ports = ExecutionPorts(config)
        load = Instruction("ld", rd=1, rs1=2)
        assert ports.request(load, cycle=1).granted
        # Only one memory issue port on SmallBOOM.
        assert not ports.request(load, cycle=1).granted
        assert ports.request(load, cycle=2).granted

    def test_divider_is_not_pipelined(self):
        ports = ExecutionPorts(small_boom_config())
        start_one = ports.claim_divider(cycle=0, latency=12, floating_point=False)
        start_two = ports.claim_divider(cycle=1, latency=12, floating_point=False)
        assert start_one == 0 and start_two == 12

    def test_base_latencies_ordered(self):
        config = small_boom_config()
        assert base_latency(Instruction("add", rd=1, rs1=2, rs2=3), config) < base_latency(
            Instruction("div", rd=1, rs1=2, rs2=3), config
        )
        assert base_latency(Instruction("fdiv.d", rd=1, rs1=2, rs2=3), config) >= base_latency(
            Instruction("fadd.d", rd=1, rs1=2, rs2=3), config
        )

    def test_is_divider_op(self):
        assert is_divider_op(Instruction("div", rd=1, rs1=2, rs2=3))
        assert is_divider_op(Instruction("fdiv.d", rd=1, rs1=2, rs2=3))
        assert not is_divider_op(Instruction("add", rd=1, rs1=2, rs2=3))


class TestConfigsAndBugs:
    def test_core_configs_match_paper_table2(self):
        boom = small_boom_config()
        xiangshan = xiangshan_minimal_config()
        assert boom.isa == "RV64GC" and xiangshan.isa == "RV64GC"
        assert xiangshan.rob_entries > boom.rob_entries
        assert boom.annotation_loc == 212
        assert xiangshan.annotation_loc == 592
        assert xiangshan.verilog_loc > boom.verilog_loc

    def test_bug_assignment_per_core(self):
        assert "phantom-rsb" in default_bug_set("boom")
        assert "meltdown-sampling" in default_bug_set("xiangshan")
        assert "meltdown-sampling" not in default_bug_set("boom")
        assert {bug.identifier for bug in bugs_for_core("small-boom")} == default_bug_set("boom")

    def test_bug_registry_cves(self):
        total_cves = sum(len(bug.cves) for bug in BUG_REGISTRY.values())
        assert len(BUG_REGISTRY) == 5
        assert total_cves == 6  # five bugs, six CVEs (B4 has two)

    def test_disable_bugs(self):
        clean = small_boom_config(enable_bugs=False)
        assert not clean.bugs
        assert not clean.has_bug("phantom-rsb")

    def test_illegal_window_policy_differs(self):
        assert small_boom_config().illegal_instruction_opens_window is False
        assert xiangshan_minimal_config().illegal_instruction_opens_window is True

    def test_predictor_unit_uses_bug_configuration(self):
        buggy = BranchPredictorUnit.from_config(small_boom_config())
        fixed = BranchPredictorUnit.from_config(small_boom_config(enable_bugs=False))
        assert buggy.ras.restore_below_tos is False
        assert fixed.ras.restore_below_tos is True

    def test_describe(self):
        text = small_boom_config().describe()
        assert "small-boom" in text and "rob=32" in text
