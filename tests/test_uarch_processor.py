"""Tests for the out-of-order pipeline model (the DUT)."""

import pytest

from repro.isa import Assembler, IsaSimulator, Permission, SimMemory
from repro.isa.instructions import Instruction
from repro.uarch import (
    Processor,
    SquashReason,
    TaintTrackingMode,
    small_boom_config,
    xiangshan_minimal_config,
)

SECRET = 0x8000
PROBE = 0xA000


def make_memory(*ranges):
    memory = SimMemory()
    for base, size in ranges:
        memory.map_range(base, size)
    return memory


def build_processor(source, config=None, memory=None, taint_mode=TaintTrackingMode.NONE,
                    extra_symbols=None, base=0x1000):
    config = config or small_boom_config()
    program = Assembler(base=base).assemble(source, extra_symbols=extra_symbols)
    if memory is None:
        memory = make_memory((base, 0x2000))
    else:
        memory.map_range(base, 0x2000)
    processor = Processor(config, memory=memory, taint_mode=taint_mode)
    processor.load_program(program, map_pages=False)
    return processor, program


class TestArchitecturalCorrectness:
    def test_simple_program_matches_isa_simulator(self):
        source = """
          li a0, 11
          li a1, 31
          mul a2, a0, a1
          xor a3, a0, a1
          sub a4, a1, a0
          ecall
        """
        memory = make_memory((0x1000, 0x2000))
        processor, program = build_processor(source, memory=memory)
        outcome = processor.run(max_cycles=400)
        reference = IsaSimulator(program, memory=make_memory((0x1000, 0x2000)))
        reference.run()
        for register in (10, 11, 12, 13, 14):
            assert processor.read_register(register) == reference.read_register(register)
        assert outcome.halted_on == "trap:ecall"

    def test_store_to_load_forwarding_with_mixed_sizes(self):
        # Regression (found by the cosim property test): forwarding used to
        # hand the load the store's *full* value, so a narrow load reading a
        # wide in-flight store (or a load spanning several partial stores)
        # diverged from the golden model.  Bytes must compose per-byte:
        # memory underneath, older stores overlaid oldest-to-youngest.
        source = """
          li a0, 0xA000
          li a1, 0x3f1
          sw a1, 32(a0)
          lbu a2, 32(a0)
          lb a3, 33(a0)
          li a4, 0xAB
          sb a4, 34(a0)
          lw a5, 32(a0)
          ecall
        """
        memory = make_memory((0x1000, 0x2000), (0xA000, 0x1000))
        processor, program = build_processor(source, memory=memory)
        processor.run(max_cycles=600)
        reference = IsaSimulator(
            program, memory=make_memory((0x1000, 0x2000), (0xA000, 0x1000))
        )
        reference.run()
        for register in (12, 13, 15):
            assert processor.read_register(register) == reference.read_register(register)
        assert processor.read_register(12) == 0xF1          # low byte of the word
        assert processor.read_register(15) == 0x00AB_03F1   # sb overlaid on sw

    def test_forwarded_untainted_store_shadows_tainted_memory(self):
        # Taint is resolved per byte like the data: an in-flight untainted
        # store fully covering the load hides the tainted memory underneath,
        # so the load result must come back clean.
        source = """
          li a0, 0xA000
          li a1, 17
          sd a1, 0(a0)
          ld a2, 0(a0)
          ecall
        """
        memory = make_memory((0x1000, 0x2000), (0xA000, 0x1000))
        processor, _ = build_processor(
            source, memory=memory, taint_mode=TaintTrackingMode.CELLIFT
        )
        processor.mark_secret(0xA000, 8)
        processor.run(max_cycles=400)
        assert processor.read_register(12) == 17
        assert not processor.taint.register_is_tainted(12)

    def test_loop_commits_expected_count(self):
        source = """
          li a0, 0
          li a1, 8
        loop:
          addi a0, a0, 1
          blt a0, a1, loop
          ecall
        """
        processor, _ = build_processor(source)
        outcome = processor.run(max_cycles=600)
        assert processor.read_register(10) == 8
        # 2 setup + 8*2 loop body + ecall commit is not architectural
        assert outcome.committed_instructions == 2 + 16

    def test_store_visible_after_commit_only(self):
        source = """
          li t0, 0xA000
          li t1, 77
          sd t1, 0(t0)
          ecall
        """
        memory = make_memory((0x1000, 0x2000), (PROBE, 0x1000))
        processor, _ = build_processor(source, memory=memory)
        processor.run(max_cycles=300)
        assert memory.read(PROBE, 8) == 77

    def test_store_to_load_forwarding(self):
        source = """
          li t0, 0xA000
          li t1, 123
          sd t1, 0(t0)
          ld t2, 0(t0)
          ecall
        """
        memory = make_memory((0x1000, 0x2000), (PROBE, 0x1000))
        processor, _ = build_processor(source, memory=memory)
        processor.run(max_cycles=300)
        assert processor.read_register(7) == 123

    def test_call_return(self):
        source = """
          call helper
          li a1, 5
          ecall
        helper:
          li a0, 9
          ret
        """
        processor, _ = build_processor(source)
        processor.run(max_cycles=300)
        assert processor.read_register(10) == 9
        assert processor.read_register(11) == 5


class TestSpeculationAndSquashes:
    def test_branch_misprediction_squashes_wrong_path(self):
        # Train the branch taken in a loop, then flip the condition: the final
        # execution mispredicts and the wrong path must not commit.
        source = """
          li a0, 0
          li a1, 4
        loop:
          addi a0, a0, 1
          blt a0, a1, loop
          li a2, 1
          ecall
        """
        processor, _ = build_processor(source)
        outcome = processor.run(max_cycles=600)
        assert processor.read_register(12) == 1
        assert SquashReason.BRANCH_MISPREDICTION in outcome.trace.squash_reasons()
        # Architectural state must be unaffected by squashed wrong-path work.
        assert processor.read_register(10) == 4

    def test_exception_commits_at_head_and_squashes_younger(self):
        source = """
          li t0, 0x6000
          ld t1, 0(t0)
          li a2, 1
          ecall
        """
        processor, _ = build_processor(source)
        outcome = processor.run(max_cycles=400)
        assert outcome.halted_on == "trap:load_access_fault"
        assert processor.read_register(12) == 0  # younger write never committed
        assert len(outcome.trace.transient_sequences()) > 0

    def test_meltdown_forwarding_taints_dependents(self):
        """A faulting load still forwards data to transient dependents."""
        source = """
          li t0, 0x8000
          ld s0, 0(t0)
          slli s1, s0, 6
          li t1, 0xA000
          add t1, t1, s1
          ld t2, 0(t1)
          ecall
        """
        memory = make_memory((0x1000, 0x2000), (PROBE, 0x10000))
        memory.map_page(SECRET, Permission.EXECUTE)  # mapped, not readable
        memory.write(SECRET, 0x42, 8)
        processor, _ = build_processor(source, memory=memory, taint_mode=TaintTrackingMode.CELLIFT)
        processor.mark_secret(SECRET, 8)
        outcome = processor.run(max_cycles=400)
        assert outcome.halted_on == "trap:load_page_fault"
        # The probe line indexed by the secret was touched and tainted.
        assert processor.hierarchy.dcache.tainted_entry_count() >= 1
        assert outcome.taint.max_taint_bits() > 0

    def test_memory_disambiguation_squash(self):
        source = """
          li a0, 0xA000
          li a4, 900
          li a5, 3
          li t3, 55
          sd t3, 0(a0)
          div a3, a4, a5
          div a3, a3, a3
          andi a3, a3, 0
          add a3, a3, a0
          sd zero, 0(a3)
          ld t4, 0(a0)
          ecall
        """
        memory = make_memory((0x1000, 0x2000), (PROBE, 0x1000))
        processor, _ = build_processor(source, memory=memory)
        outcome = processor.run(max_cycles=600)
        assert SquashReason.MEMORY_DISAMBIGUATION in outcome.trace.squash_reasons()
        # After re-execution the load observes the (architecturally correct) zero.
        assert processor.read_register(29) == 0

    def test_illegal_instruction_window_policy(self):
        instructions = [
            Instruction("illegal"),
            Instruction("addi", rd=10, rs1=0, imm=1),
            Instruction("addi", rd=11, rs1=0, imm=1),
            Instruction("ecall"),
        ]
        for config, expect_window in (
            (small_boom_config(), False),
            (xiangshan_minimal_config(), True),
        ):
            program = Assembler(base=0x1000).assemble_instructions(instructions)
            memory = make_memory((0x1000, 0x1000))
            processor = Processor(config, memory=memory)
            processor.load_program(program, map_pages=False)
            outcome = processor.run(max_cycles=400)
            assert outcome.halted_on == "trap:illegal_instruction"
            transient_younger = [
                sequence for sequence in outcome.trace.transient_sequences() if sequence > 0
            ]
            assert bool(transient_younger) == expect_window

    def test_trap_hook_redirects(self):
        source = """
          ecall
          nop
        handler:
          li a0, 3
          ecall
        """
        processor, program = build_processor(source)
        handler = program.label_address("handler")
        calls = []

        def hook(cause, pc, tval):
            calls.append(cause)
            return handler if len(calls) == 1 else None

        processor.trap_hook = hook
        processor.run(max_cycles=400)
        assert processor.read_register(10) == 3
        assert len(calls) == 2


class TestSideChannelState:
    def test_dcache_state_persists_across_squash(self):
        """The core Spectre property: squashed loads leave cache lines resident."""
        source = """
          li a0, 0
          li a1, 4
        loop:
          addi a0, a0, 1
          blt a0, a1, loop
          li a2, 1
          ecall
        """
        processor, _ = build_processor(source)
        processor.run(max_cycles=600)
        assert processor.hierarchy.dcache.accesses >= 0  # structure exists and is queried
        fingerprint_one = processor.side_channel_fingerprint()
        assert isinstance(hash(fingerprint_one), int)

    def test_fingerprint_differs_for_different_data_paths(self):
        template = """
          li t0, {offset}
          li t1, 0xA000
          add t1, t1, t0
          ld t2, 0(t1)
          ecall
        """
        fingerprints = []
        for offset in (0, 0x1000):
            memory = make_memory((0x1000, 0x2000), (PROBE, 0x2000))
            processor, _ = build_processor(template.format(offset=offset), memory=memory)
            processor.run(max_cycles=300)
            fingerprints.append(hash(processor.side_channel_fingerprint()))
        assert fingerprints[0] != fingerprints[1]

    def test_b1_truncation_samples_valid_location(self):
        """MeltDown-Sampling: illegal high addresses are truncated on XiangShan."""
        source = """
          li t3, 1
          slli t3, t3, 40
          li t0, 0xA000
          ld t6, 0(t0)        # warm the target line (the attacker can do this)
          or t0, t0, t3
          ld s0, 0(t0)
          slli s1, s0, 6
          li t1, 0xA000
          add t1, t1, s1
          ld t2, 0(t1)
          ecall
        """
        results = {}
        for name, config in (
            ("buggy", xiangshan_minimal_config()),
            ("clean", xiangshan_minimal_config(enable_bugs=False)),
        ):
            memory = make_memory((0x1000, 0x2000), (PROBE, 0x10000))
            memory.write(PROBE, 0x7, 8)
            processor, _ = build_processor(
                source, config=config, memory=memory, taint_mode=TaintTrackingMode.CELLIFT
            )
            processor.mark_secret(PROBE, 8)
            outcome = processor.run(max_cycles=400)
            assert outcome.halted_on == "trap:load_access_fault"
            # The value at the truncated address is 0x7; if it was sampled the
            # transient probe load touches PROBE + (0x7 << 6).
            results[name] = processor.hierarchy.dcache.lookup(PROBE + (0x7 << 6))
        assert results["buggy"] is True
        assert results["clean"] is False

    def test_contention_counters_exposed(self):
        # Back-to-back divisions pile up on the non-pipelined FP divider.
        source = "\n".join(["fdiv.d f1, f2, f3"] * 5) + "\necall\n"
        processor, _ = build_processor(source)
        outcome = processor.run(max_cycles=600)
        assert outcome.contention["fdiv"] > 0


class TestTraceLog:
    def test_enqueue_commit_counts(self):
        source = "li a0, 1\nli a1, 2\necall\n"
        processor, _ = build_processor(source)
        outcome = processor.run(max_cycles=200)
        summary = outcome.trace.summary()
        assert summary["committed"] == 2
        assert summary["enqueued"] >= summary["committed"]

    def test_window_cycle_range_none_without_window(self):
        source = "li a0, 1\necall\n"
        processor, _ = build_processor(source)
        outcome = processor.run(max_cycles=200)
        committed = set(outcome.trace.committed_sequences())
        only_ecall_transient = all(
            outcome.trace.enqueues[index].mnemonic == "ecall"
            for index, event in enumerate(outcome.trace.enqueues)
            if event.sequence not in committed
        )
        assert only_ecall_transient

    def test_commit_cycles_recorded_in_order(self):
        source = "li a0, 1\nli a1, 2\nli a2, 3\necall\n"
        processor, _ = build_processor(source)
        outcome = processor.run(max_cycles=200)
        cycles = [cycle for cycle, _ in outcome.commit_cycles]
        assert cycles == sorted(cycles)
