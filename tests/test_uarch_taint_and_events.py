"""Tests for the taint engine, trace-log queries, reports and co-simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.report import BugReport, CampaignResult, classify_report
from repro.core.phase3 import LeakageVerdict
from repro.generation import TransientWindowType
from repro.generation.random_inst import RandomInstructionGenerator, SafeRegion
from repro.isa import Assembler, IsaSimulator, SimMemory
from repro.isa.instructions import Instruction
from repro.uarch import (
    Processor,
    RobCommitEvent,
    RobEnqueueEvent,
    RobSquashEvent,
    SquashReason,
    TaintTrackingMode,
    TraceLog,
    small_boom_config,
)
from repro.uarch.config import TaintTrackingMode as Mode
from repro.uarch.taint import BIT_WEIGHTS, TaintCensus, TaintState, make_peer_diff_oracle
from repro.utils.rng import DeterministicRng


class TestTaintState:
    def test_disabled_mode_tracks_nothing(self):
        taint = TaintState(mode=Mode.NONE)
        taint.set_register_taint(5, True)
        assert not taint.register_is_tainted(5)
        assert not taint.enabled

    def test_register_taint_and_x0(self):
        taint = TaintState(mode=Mode.CELLIFT)
        taint.set_register_taint(5, True)
        taint.set_register_taint(0, True)
        assert taint.register_is_tainted(5)
        assert not taint.register_is_tainted(0)
        assert taint.tainted_register_count() == 1

    def test_address_range_taint(self):
        taint = TaintState(mode=Mode.DIFFIFT)
        taint.taint_address_range(0x1000, 8)
        assert taint.address_tainted(0x1004)
        assert taint.address_tainted(0x0FFF, nbytes=2)
        assert not taint.address_tainted(0x1008)
        taint.taint_memory_write(0x2000, 4, tainted=True)
        assert taint.address_tainted(0x2002)
        taint.taint_memory_write(0x2000, 4, tainted=False)
        assert not taint.address_tainted(0x2002)

    def test_control_event_gating_by_mode(self):
        cellift = TaintState(mode=Mode.CELLIFT)
        assert cellift.control_event("dcache_set", (1,), 3, tainted=True, cycle=0) is True
        assert cellift.control_event("dcache_set", (2,), 3, tainted=False, cycle=0) is False

        diffift_no_oracle = TaintState(mode=Mode.DIFFIFT)
        assert diffift_no_oracle.control_event("dcache_set", (1,), 3, tainted=True, cycle=0) is False

        diffift = TaintState(mode=Mode.DIFFIFT, diff_oracle=lambda kind, key, value: value == 3)
        assert diffift.control_event("dcache_set", (1,), 3, tainted=True, cycle=0) is True
        assert diffift.control_event("dcache_set", (1,), 4, tainted=True, cycle=0) is False

    def test_peer_diff_oracle(self):
        peer = TaintState(mode=Mode.DIFFIFT)
        peer.control_event("dcache_set", (7,), 5, tainted=True, cycle=1)
        oracle = make_peer_diff_oracle(peer)
        assert oracle("dcache_set", (7,), 6) is True    # values differ
        assert oracle("dcache_set", (7,), 5) is False   # identical
        assert oracle("dcache_set", (99,), 5) is True   # peer never got there

    def test_census_and_overlays(self):
        taint = TaintState(mode=Mode.CELLIFT)
        taint.set_register_taint(3, True)
        taint.add_control_overlay("rob", 4)
        census = taint.record_census(cycle=10, component_counts={"dcache": 2})
        assert census.element_counts["regfile"] == 1
        assert census.element_counts["rob"] == 4
        assert census.bit_count("dcache") == 2 * BIT_WEIGHTS["dcache"]
        assert census.total_bits() > 0
        assert taint.taint_sum_series() == [census.total_bits()]
        taint.clear_control_overlay("rob")
        second = taint.record_census(cycle=11, component_counts={})
        assert "rob" not in second.nonzero_modules()

    def test_census_totals(self):
        census = TaintCensus(cycle=0, element_counts={"dcache": 1, "rob": 2, "tlb": 0})
        assert census.total_elements() == 3
        assert census.nonzero_modules() == {"dcache": 1, "rob": 2}


class TestTraceLog:
    def _log(self):
        log = TraceLog()
        log.record_enqueue(RobEnqueueEvent(cycle=1, rob_index=0, sequence=0, pc=0x100, mnemonic="addi"))
        log.record_enqueue(RobEnqueueEvent(cycle=2, rob_index=1, sequence=1, pc=0x104, mnemonic="ld"))
        log.record_enqueue(RobEnqueueEvent(cycle=3, rob_index=2, sequence=2, pc=0x108, mnemonic="add"))
        log.record_commit(RobCommitEvent(cycle=4, rob_index=0, sequence=0, pc=0x100, mnemonic="addi"))
        log.record_squash(
            RobSquashEvent(
                cycle=5,
                reason=SquashReason.EXCEPTION,
                trigger_sequence=1,
                trigger_pc=0x104,
                squashed_sequences=(1, 2),
            )
        )
        return log

    def test_transient_sequences(self):
        log = self._log()
        assert log.transient_sequences() == [1, 2]
        assert log.squashed_sequences() == [1, 2]

    def test_window_detection_with_and_without_pcs(self):
        log = self._log()
        assert log.transient_window_triggered()
        assert log.transient_window_triggered({0x108})
        assert not log.transient_window_triggered({0x900})

    def test_window_cycle_range(self):
        log = self._log()
        start, end = log.window_cycle_range({0x104, 0x108})
        assert start == 2 and end == 5
        assert log.window_cycle_range({0x900}) is None

    def test_counts_and_summary(self):
        log = self._log()
        assert log.enqueue_count_in_window({0x104, 0x108}) == 2
        assert log.commit_count_in_window({0x100}) == 1
        summary = log.summary()
        assert summary == {
            "enqueued": 3,
            "committed": 1,
            "squashes": 1,
            "transient": 2,
            "traps": 0,
            "redirects": 0,
        }


class TestReports:
    def _verdict(self, live=None, reason="live_taint", timing=0):
        return LeakageVerdict(
            is_leak=True,
            reason=reason,
            timing_difference=timing,
            live_sinks=live or {"dcache": 1},
        )

    def test_classification_components_and_matching(self):
        report = classify_report(
            iteration=1,
            seed_id=2,
            core_name="xiangshan-minimal",
            window_type=TransientWindowType.LOAD_ACCESS_FAULT,
            verdict=self._verdict(),
        )
        assert report.attack_type == "meltdown"
        assert report.window_category == "mem-excp"
        assert "dcache" in report.timing_components
        assert "meltdown-sampling" in report.matched_known_bugs

    def test_timing_report_uses_contention(self):
        report = classify_report(
            iteration=0,
            seed_id=0,
            core_name="small-boom",
            window_type=TransientWindowType.BRANCH_MISPREDICTION,
            verdict=LeakageVerdict(is_leak=True, reason="timing", timing_difference=4),
            contention={"fdiv": 10},
        )
        assert "fpu" in report.timing_components

    def test_signature_deduplication(self):
        result = CampaignResult(fuzzer_name="dejavuzz", core="small-boom")
        for _ in range(3):
            result.record_report(
                classify_report(
                    iteration=0,
                    seed_id=0,
                    core_name="small-boom",
                    window_type=TransientWindowType.LOAD_PAGE_FAULT,
                    verdict=self._verdict(),
                )
            )
        assert len(result.reports) == 3
        assert len(result.unique_bug_signatures()) == 1
        assert result.first_bug_iteration == 0
        assert result.table5_rows()[0]["attack_type"] == "meltdown"

    def test_campaign_summary_fields(self):
        result = CampaignResult(fuzzer_name="dejavuzz", core="c")
        result.coverage_history = [1, 2, 3]
        result.iterations_run = 3
        summary = result.finish().summary()
        assert summary["coverage"] == 3
        assert summary["iterations"] == 3
        assert summary["elapsed_seconds"] >= 0


class TestCoSimulation:
    """Property test: the OoO pipeline retires the same architectural state as the ISA model."""

    @settings(max_examples=15, deadline=None)
    @given(entropy=st.integers(min_value=0, max_value=10_000))
    def test_random_arithmetic_programs_match_golden_model(self, entropy):
        rng = DeterministicRng(entropy, "cosim")
        generator = RandomInstructionGenerator(
            rng, safe_regions=[SafeRegion(0xA000, 0x1000)]
        )
        body = generator.filler_block(30, allow_branches=False)
        body.append(Instruction("ecall"))
        program = Assembler(base=0x1000).assemble_instructions(body)

        def fresh_memory():
            memory = SimMemory()
            memory.map_range(0x1000, 0x1000)
            memory.map_range(0xA000, 0x1000)
            return memory

        reference = IsaSimulator(program, memory=fresh_memory())
        reference.run(max_instructions=200)

        processor = Processor(small_boom_config(), memory=fresh_memory())
        processor.load_program(program, map_pages=False)
        outcome = processor.run(max_cycles=1500)
        assert outcome.halted_on == "trap:ecall"
        for register in range(32):
            assert processor.read_register(register) == reference.read_register(register), (
                f"register x{register} diverged for entropy {entropy}"
            )
