"""Tests for repro.utils: bit manipulation and deterministic RNG streams."""

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    DeterministicRng,
    align_down,
    align_up,
    bit,
    bits,
    is_aligned,
    mask,
    popcount,
    sign_extend,
    split_rng,
    to_signed,
    to_unsigned,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(8) == 0xFF

    def test_64_bits(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitAccess:
    def test_bit_extraction(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bit(0b1010, 3) == 1

    def test_bit_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bit(1, -1)

    def test_bits_slice(self):
        assert bits(0xABCD, 15, 12) == 0xA
        assert bits(0xABCD, 7, 0) == 0xCD
        assert bits(0xABCD, 11, 8) == 0xB

    def test_bits_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            bits(0xFF, 0, 4)


class TestSignedness:
    def test_to_signed_positive(self):
        assert to_signed(5, 8) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1, 8) == 0xFF
        assert to_unsigned(-1, 64) == mask(64)

    def test_sign_extend(self):
        assert sign_extend(0xFF, 8, 16) == 0xFFFF
        assert sign_extend(0x7F, 8, 16) == 0x7F

    def test_sign_extend_narrowing_rejected(self):
        with pytest.raises(ValueError):
            sign_extend(0xFF, 16, 8)

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_signed_unsigned_roundtrip(self, value):
        assert to_signed(to_unsigned(value, 32), 32) == value

    @given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=1, max_value=16))
    def test_to_unsigned_always_in_range(self, value, width):
        assert 0 <= to_unsigned(value, width) < (1 << width)


class TestPopcountAndAlignment:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(mask(64)) == 64

    def test_popcount_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_align_down(self):
        assert align_down(0x1237, 16) == 0x1230
        assert align_down(0x1000, 0x1000) == 0x1000

    def test_align_up(self):
        assert align_up(0x1001, 0x1000) == 0x2000
        assert align_up(0x1000, 0x1000) == 0x1000

    def test_is_aligned(self):
        assert is_aligned(64, 64)
        assert not is_aligned(65, 64)

    def test_alignment_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            align_up(10, 3)

    @given(st.integers(min_value=0, max_value=2**32), st.sampled_from([1, 2, 4, 8, 64, 4096]))
    def test_align_down_le_value_le_align_up(self, value, alignment):
        assert align_down(value, alignment) <= value <= align_up(value, alignment)
        assert is_aligned(align_down(value, alignment), alignment)
        assert is_aligned(align_up(value, alignment), alignment)


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(10)] == [b.randint(0, 100) for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [b.randint(0, 10**9) for _ in range(5)]

    def test_split_independent_of_consumption(self):
        a = DeterministicRng(7)
        a_child_before = a.split("x").randint(0, 10**9)
        b = DeterministicRng(7)
        for _ in range(100):
            b.random()
        b_child = b.split("x").randint(0, 10**9)
        assert a_child_before == b_child

    def test_split_labels_differ(self):
        root = DeterministicRng(7)
        assert root.split("a").randint(0, 10**9) != root.split("b").randint(0, 10**9)

    def test_choice_and_sample(self):
        rng = DeterministicRng(3)
        options = list(range(20))
        assert rng.choice(options) in options
        sampled = rng.sample(options, 5)
        assert len(set(sampled)) == 5

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).choice([])

    def test_bernoulli_bounds(self):
        rng = DeterministicRng(5)
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_shuffle_preserves_elements(self):
        rng = DeterministicRng(11)
        items = list(range(10))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # original untouched

    def test_randbits_width(self):
        rng = DeterministicRng(9)
        for width in (1, 8, 64):
            assert 0 <= rng.randbits(width) < (1 << width)
        assert rng.randbits(0) == 0

    def test_split_rng_helper(self):
        streams = split_rng(5, ["a", "b", "c"])
        assert len(streams) == 3
        assert streams[0].label == "a"

    def test_pick_weighted_validates(self):
        rng = DeterministicRng(1)
        with pytest.raises(ValueError):
            rng.pick_weighted([1, 2], [1.0])
        assert rng.pick_weighted(["x"], [1.0]) == "x"
