"""Tests for batched window evaluation: DUT reuse via Processor.reset() /
SwapMemory.rearm(), speculative trigger lookahead, and the batch accounting.

The shared contract under test: batching is *byte-transparent* — the same
campaign run with any ``window_lookahead``, with the DUT pool on or off, and
on any execution path produces byte-identical deterministic wire forms.
"""

import json

import pytest

from repro.core.backends import (
    AsyncBackend,
    InlineBackend,
    ProcessPoolBackend,
    ShardTask,
    run_shard_task,
)
from repro.core.distributed import (
    DistributedBackend,
    fuzzer_configuration_from_wire,
    fuzzer_configuration_to_wire,
)
from repro.core.engine import (
    EngineConfiguration,
    ParallelCampaignEngine,
    run_parallel_campaign,
)
from repro.core.fuzzer import DejaVuzzFuzzer, FuzzerConfiguration, run_quick_campaign
from repro.core.phase1 import DEFAULT_LAYOUT, DutPool, TransientWindowTriggering
from repro.core.report import CampaignResult
from repro.core.worker import run_worker
from repro.generation.mutation import Mutator
from repro.generation.seeds import Seed
from repro.generation.window_types import TransientWindowType
from repro.uarch import small_boom_config
from repro.utils.rng import DeterministicRng

BOOM = small_boom_config()

# Entropy values where the quick campaign hits window misses, so the
# speculative lookahead actually engages (asserted below, so a generator
# change that stops producing misses here fails loudly instead of silently
# weakening the suite).
MISS_HEAVY_ENTROPIES = (6, 7, 16)


def deterministic_dict(iterations=8, entropy=11, **overrides):
    result = run_quick_campaign(BOOM, iterations, entropy=entropy, **overrides)
    return result.to_dict(include_timing=False)


def engine_wire(result):
    return json.dumps(result.campaign.to_dict(include_timing=False), sort_keys=True)


def make_seed(seed_id=7, entropy=13, window_type=TransientWindowType.BRANCH_MISPREDICTION):
    return Seed(seed_id=seed_id, entropy=entropy, window_type=window_type)


class TestSpeculativeLookahead:
    def test_k1_is_the_legacy_path(self):
        configuration = FuzzerConfiguration(core=BOOM, entropy=6, window_lookahead=1)
        fuzzer = DejaVuzzFuzzer(configuration)
        fuzzer.run_campaign(iterations=12)
        stats = fuzzer.batch_stats()
        assert stats["speculated"] == 0
        assert stats["lookahead_hits"] == 0

    def test_lookahead_campaigns_are_byte_identical(self):
        for entropy in MISS_HEAVY_ENTROPIES:
            legacy = deterministic_dict(iterations=12, entropy=entropy)
            for lookahead in (3, 8):
                batched = deterministic_dict(
                    iterations=12, entropy=entropy, window_lookahead=lookahead
                )
                assert batched == legacy

    def test_lookahead_actually_engages_on_misses(self):
        engaged = 0
        for entropy in MISS_HEAVY_ENTROPIES:
            configuration = FuzzerConfiguration(
                core=BOOM, entropy=entropy, window_lookahead=4
            )
            fuzzer = DejaVuzzFuzzer(configuration)
            fuzzer.run_campaign(iterations=12)
            stats = fuzzer.batch_stats()
            engaged += stats["lookahead_hits"]
            assert stats["speculated"] >= stats["lookahead_hits"]
        assert engaged > 0

    def test_lookahead_without_sim_cache_is_byte_identical(self):
        # Speculation replays through the simulation memo; with the memo off
        # it is skipped entirely, and the campaign must not notice.
        legacy = deterministic_dict(iterations=12, entropy=6)
        uncached = deterministic_dict(
            iterations=12, entropy=6, window_lookahead=4, sim_cache=False
        )
        assert uncached == legacy

    def test_simulation_totals_are_conserved_with_fewer_boundaries(self):
        def steps(lookahead):
            fuzzer = DejaVuzzFuzzer(
                FuzzerConfiguration(core=BOOM, entropy=6, window_lookahead=lookahead)
            )
            generator = fuzzer.campaign_steps(12)
            collected = []
            while True:
                try:
                    collected.append(next(generator))
                except StopIteration:
                    break
            return collected, fuzzer.batch_stats()

        legacy, _ = steps(1)
        batched, stats = steps(4)
        assert stats["lookahead_hits"] > 0
        # The logical simulation budget is conserved: absorbed rounds are
        # pre-charged by their batch's consolidated step.
        assert sum(s.simulations for s in batched) == sum(
            s.simulations for s in legacy
        )
        # Absorbed rounds yield no step of their own: fewer boundaries.
        assert len(batched) == len(legacy) - stats["lookahead_hits"]

    def test_rejects_bad_lookahead(self):
        with pytest.raises(ValueError, match="window_lookahead"):
            DejaVuzzFuzzer(
                FuzzerConfiguration(core=BOOM, entropy=3, window_lookahead=0)
            )
        with pytest.raises(ValueError, match="window_lookahead"):
            EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=3),
                iterations=4,
                window_lookahead=0,
            )


class TestDutPool:
    def test_pooled_and_fresh_runs_are_identical_interleaved(self):
        pooled = TransientWindowTriggering(BOOM, dut_pool=True)
        fresh = TransientWindowTriggering(BOOM, dut_pool=False)
        rng = DeterministicRng(99, "dut-pool-test")
        for index in range(10):
            seed = make_seed(
                seed_id=index,
                entropy=rng.randint(0, 2**31 - 1),
                window_type=rng.choice(list(TransientWindowType)),
            )
            a = pooled.run(seed)
            b = fresh.run(seed)
            assert a.to_dict() == b.to_dict()
        assert pooled.dut_pool.reuses > 0
        assert fresh.dut_pool is None

    def test_force_disable_flag_is_byte_identical(self):
        baseline = deterministic_dict()
        TransientWindowTriggering.force_disable_dut_pool = True
        try:
            disabled = deterministic_dict()
        finally:
            TransientWindowTriggering.force_disable_dut_pool = False
        assert baseline == disabled

    def test_pool_knob_is_byte_identical(self):
        assert deterministic_dict(dut_pool=False) == deterministic_dict()

    def test_pool_reuses_one_dut_across_a_campaign(self):
        fuzzer = DejaVuzzFuzzer(FuzzerConfiguration(core=BOOM, entropy=11))
        fuzzer.run_campaign(iterations=8)
        stats = fuzzer.batch_stats()
        assert stats["dut_constructions"] == 1
        assert stats["dut_reuses"] > 0

    def test_concurrent_checkout_falls_back_to_fresh(self):
        pool = DutPool(BOOM, DEFAULT_LAYOUT)
        memory_a, processor_a = pool.checkout(secret=0x1234)
        memory_b, processor_b = pool.checkout(secret=0x1234)
        assert processor_a is not processor_b
        assert memory_a is not memory_b
        assert pool.constructions == 2
        pool.checkin(processor_a)
        # The pooled DUT is back; the next checkout reuses it.
        _, processor_c = pool.checkout(secret=0x5678)
        assert processor_c is processor_a
        assert pool.reuses == 1


class TestBatchingAcrossExecutionPaths:
    ENGINE_KWARGS = dict(
        shards=2, slices=2, iterations=8, sync_epochs=2, entropy=9
    )

    @pytest.fixture(scope="class")
    def inline_reference(self):
        result = run_parallel_campaign(
            BOOM, executor="inline", **self.ENGINE_KWARGS
        )
        return engine_wire(result)

    def test_inline_lookahead_matches_reference(self, inline_reference):
        batched = run_parallel_campaign(
            BOOM, executor="inline", window_lookahead=3, dut_pool=False,
            **self.ENGINE_KWARGS,
        )
        assert engine_wire(batched) == inline_reference
        # Every run reports batch rows; the analysis table picks them up.
        from repro.analysis import window_batch_table

        rows = window_batch_table(batched.sim_log)
        assert rows and sum(row["batches"] for row in rows) > 0

    def test_process_pool_lookahead_matches_reference(self, inline_reference):
        batched = run_parallel_campaign(
            BOOM, executor="process", window_lookahead=3, **self.ENGINE_KWARGS
        )
        assert engine_wire(batched) == inline_reference

    def test_async_lookahead_matches_reference(self, inline_reference):
        batched = run_parallel_campaign(
            BOOM, executor="async", window_lookahead=3, **self.ENGINE_KWARGS
        )
        assert engine_wire(batched) == inline_reference

    def test_distributed_lookahead_matches_reference(self, inline_reference):
        import threading

        backend = DistributedBackend(listen="127.0.0.1:0")
        try:
            threading.Thread(
                target=run_worker,
                kwargs=dict(
                    connect=f"{backend.address[0]}:{backend.address[1]}", quiet=True
                ),
                daemon=True,
            ).start()
            batched = run_parallel_campaign(
                BOOM, executor="inline", backend=backend, window_lookahead=3,
                **self.ENGINE_KWARGS,
            )
        finally:
            backend.close()
        assert engine_wire(batched) == inline_reference

    def test_subprocess_simulator_lookahead_matches_inproc(self):
        def task(simulator, lookahead):
            return ShardTask(
                slice_index=0,
                epoch=0,
                iterations=6,
                configuration=FuzzerConfiguration(
                    core=BOOM, entropy=6, seed_id_base=10,
                    window_lookahead=lookahead,
                ),
                simulator=simulator,
            )

        def deterministic_payload(payload):
            result = CampaignResult.from_dict(payload["result"]).to_dict(
                include_timing=False
            )
            return {
                "slice_index": payload["slice_index"],
                "core": payload["core"],
                "result": result,
                "points": payload["points"],
                "top_seeds": payload["top_seeds"],
            }

        reference = deterministic_payload(run_shard_task(task("inproc", 1)))
        subprocess_payload = run_shard_task(task("subprocess", 3))
        assert deterministic_payload(subprocess_payload) == reference
        # The client merged its process counters into the runner's batch row.
        stats = subprocess_payload["sim_stats"]
        assert stats["spawns"] >= 1
        assert stats["window_batches"] > 0


class TestCheckpointResume:
    def test_resume_mid_campaign_with_lookahead_is_byte_identical(self, tmp_path):
        def configuration(checkpoint=None):
            return EngineConfiguration(
                fuzzer=FuzzerConfiguration(
                    core=BOOM, entropy=6, window_lookahead=4
                ),
                shards=2,
                slices=2,
                iterations=12,
                sync_epochs=3,
                executor="inline",
                checkpoint_path=checkpoint,
            )

        uninterrupted = ParallelCampaignEngine(configuration()).run()
        checkpoint = str(tmp_path / "batched.json")
        halted = ParallelCampaignEngine(configuration(checkpoint)).run(max_epochs=1)
        assert not halted.complete
        resumed = ParallelCampaignEngine.resume_from(
            checkpoint, configuration(checkpoint)
        ).run()
        assert engine_wire(resumed) == engine_wire(uninterrupted)

    def test_lookahead_is_not_part_of_the_campaign_identity(self, tmp_path):
        # Batching knobs are transparent, so a checkpoint written with K=1
        # resumes under K>1 (and vice versa) with identical results.
        def configuration(lookahead, dut_pool, checkpoint):
            return EngineConfiguration(
                fuzzer=FuzzerConfiguration(core=BOOM, entropy=6),
                shards=2,
                slices=2,
                iterations=12,
                sync_epochs=3,
                executor="inline",
                checkpoint_path=checkpoint,
                window_lookahead=lookahead,
                dut_pool=dut_pool,
            )

        uninterrupted = ParallelCampaignEngine(
            configuration(1, True, None)
        ).run()
        checkpoint = str(tmp_path / "identity.json")
        ParallelCampaignEngine(configuration(1, True, checkpoint)).run(max_epochs=1)
        resumed = ParallelCampaignEngine.resume_from(
            checkpoint, configuration(4, False, checkpoint)
        ).run()
        assert engine_wire(resumed) == engine_wire(uninterrupted)


class TestWireDefaults:
    def test_missing_batch_keys_default_to_off(self):
        wire = fuzzer_configuration_to_wire(
            FuzzerConfiguration(core=BOOM, entropy=5)
        )
        assert wire["window_lookahead"] == 1
        assert wire["dut_pool"] is True
        del wire["window_lookahead"]
        del wire["dut_pool"]
        decoded = fuzzer_configuration_from_wire(wire)
        assert decoded.window_lookahead == 1
        assert decoded.dut_pool is True

    def test_batch_knobs_round_trip(self):
        configuration = FuzzerConfiguration(
            core=BOOM, entropy=5, window_lookahead=6, dut_pool=False
        )
        decoded = fuzzer_configuration_from_wire(
            fuzzer_configuration_to_wire(configuration)
        )
        assert decoded == configuration


class TestForkPrimitives:
    def test_rng_clone_replays_the_future(self):
        rng = DeterministicRng(42, "clone-test")
        rng.randint(0, 100)  # consume some state first
        clone = rng.clone()
        speculative = [clone.randint(0, 10**9) for _ in range(5)]
        committed = [rng.randint(0, 10**9) for _ in range(5)]
        assert speculative == committed

    def test_mutator_fork_replays_seeds_and_ids(self):
        mutator = Mutator(DeterministicRng(7, "fork-test"), seed_id_base=500)
        seed = make_seed(seed_id=mutator.allocate_seed_id())
        fork = mutator.fork()
        speculative = fork.mutate_trigger(seed)
        speculative = [speculative, fork.mutate_trigger(speculative)]
        committed = mutator.mutate_trigger(seed)
        committed = [committed, mutator.mutate_trigger(committed)]
        for a, b in zip(speculative, committed):
            assert a.to_dict() == b.to_dict()
        assert [s.seed_id for s in committed] == [501, 502]
